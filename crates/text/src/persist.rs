//! Cold-start persistence: a checksummed binary snapshot format with
//! byte-equality load (DESIGN.md §10).
//!
//! A production engine must restart in milliseconds, not re-tokenize and
//! re-sort its whole corpus. This module defines a **dependency-free**
//! binary container and writers/readers for every serving-state type:
//! [`Vocabulary`], [`Corpus`] (frozen-statistics epoch included),
//! [`InvertedIndex`] (posting lists with their stored partials bit-exact
//! via [`f64::to_bits`]), and the full [`SegmentedIndex`] (segments +
//! tombstones + the caller's generation counter).
//!
//! ## Container layout
//!
//! ```text
//! snapshot := header section*
//! header   := magic[8]="DIVTOPK\0"  version:u32  kind:u32  section_count:u32
//! section  := tag[4]  payload_len:u64  crc32:u32  payload[payload_len]
//! ```
//!
//! All integers are explicit little-endian; floats travel as
//! [`f64::to_bits`] words, so a load reproduces the exact bits the writer
//! held — the substrate of the byte-equality-after-load contract. Each
//! section's payload is protected by an in-repo CRC32 ([`crc32`], the
//! IEEE/zlib polynomial); the header fields are protected structurally
//! (magic, a pinned [`FORMAT_VERSION`], a per-snapshot-kind section
//! schedule, and an exact-consumption check at every level).
//!
//! ## Failure model
//!
//! Corrupt input — truncation at any byte, bit-flips anywhere, bad
//! magic/version, oversized section lengths — returns a typed
//! [`SnapshotError`], never a panic and never an attacker-sized
//! allocation: section lengths are bounds-checked against the bytes
//! actually present before any slice is taken, and element counts are
//! checked against the owning payload's size before any `Vec` is
//! reserved. `tests/persistence.rs` drives a truncate-every-offset +
//! flip-every-byte suite over valid snapshots to pin this down.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] identifies the container revision. Readers accept
//! exactly the versions they know how to decode (currently only
//! version 1) and reject everything else with
//! [`SnapshotError::UnsupportedVersion`] — snapshots are cheap to
//! regenerate from the corpus, so there is no silent best-effort decoding
//! of future or past revisions. Any layout change bumps the version.

use crate::corpus::Corpus;
use crate::document::{Document, TermId};
use crate::index::{InvertedIndex, Posting};
use crate::segments::{Segment, SegmentedIndex, Tombstones};
use crate::vocab::Vocabulary;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// The 8-byte file magic every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"DIVTOPK\0";

/// The container format revision this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Snapshot kind: a standalone [`Corpus`].
pub const KIND_CORPUS: u32 = 1;
/// Snapshot kind: a standalone [`InvertedIndex`].
pub const KIND_INDEX: u32 = 2;
/// Snapshot kind: a full [`SegmentedIndex`] serving state (what
/// `Engine::save_snapshot` writes).
pub const KIND_SEGMENTED: u32 = 3;

/// Upper bound accepted for any stored score-feeding value (IDF,
/// posting partial, document weight). Legitimate values are tiny —
/// `idf ≤ ln(N)` and `partial ≤ tf·idf ≲ 10¹³` — while queries sum up
/// to `u32::MAX` of them, so admitting anything close to `f64::MAX`
/// would let a CRC-valid-but-forged snapshot overflow a query-time sum
/// to `+inf` and panic `Score::new` inside the serving process. With
/// this cap, `1e100 × 2³² ≪ f64::MAX` keeps every reachable sum finite.
const MAX_STORED_VALUE: f64 = 1e100;

const TAG_META: [u8; 4] = *b"META";
const TAG_VOCAB: [u8; 4] = *b"VOCB";
const TAG_STATS: [u8; 4] = *b"STAT";
const TAG_DOCS: [u8; 4] = *b"DOCS";
const TAG_WEIGHTS: [u8; 4] = *b"WGTS";
const TAG_TOMB: [u8; 4] = *b"TOMB";
const TAG_SEGMENT: [u8; 4] = *b"SEGI";
const TAG_INDEX: [u8; 4] = *b"INDX";

/// Why a snapshot could not be written or decoded.
///
/// Every decode failure is typed — corrupt bytes must surface as an
/// error value, never as a panic inside a serving process restoring its
/// state (see the module-level failure model).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a divtopk snapshot.
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The container declares a format revision this build cannot decode.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The container holds a different snapshot kind than the caller
    /// asked for (e.g. loading a corpus file as an engine snapshot).
    WrongKind {
        /// The kind the file declares.
        found: u32,
        /// The kind the load entry point expected.
        expected: u32,
    },
    /// A section appeared out of schedule for this snapshot kind.
    UnexpectedSection {
        /// The tag actually found.
        found: [u8; 4],
        /// The tag the fixed section schedule expected next.
        expected: [u8; 4],
    },
    /// A section payload does not match its stored CRC32 — bit rot,
    /// torn write, or tampering.
    ChecksumMismatch {
        /// Tag of the damaged section.
        tag: [u8; 4],
        /// The checksum stored in the section header.
        stored: u32,
        /// The checksum computed over the payload bytes present.
        computed: u32,
    },
    /// The input ended (or a declared length pointed) past the bytes
    /// actually present.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// Bytes the decoder needed.
        needed: u64,
        /// Bytes that were available.
        available: u64,
    },
    /// The bytes decoded but violate a structural invariant (impossible
    /// counts, non-finite floats, unsorted posting lists, out-of-range
    /// ids, non-UTF-8 strings, …).
    Malformed {
        /// Which invariant failed.
        context: &'static str,
    },
    /// Well-formed sections were followed by unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(
                    f,
                    "bad snapshot magic {found:02x?} (not a divtopk snapshot)"
                )
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::WrongKind { found, expected } => {
                write!(f, "wrong snapshot kind {found} (expected {expected})")
            }
            SnapshotError::UnexpectedSection { found, expected } => {
                write!(
                    f,
                    "unexpected section {:?} (expected {:?})",
                    String::from_utf8_lossy(found),
                    String::from_utf8_lossy(expected)
                )
            }
            SnapshotError::ChecksumMismatch {
                tag,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch in section {:?}: stored {stored:#010x}, computed {computed:#010x}",
                    String::from_utf8_lossy(tag)
                )
            }
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated snapshot while reading {context}: needed {needed} bytes, {available} available"
                )
            }
            SnapshotError::Malformed { context } => {
                write!(f, "malformed snapshot: {context}")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "trailing garbage after the last section: {extra} bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 / zlib polynomial), implemented in-repo — the
// workspace takes no external dependencies.
// ---------------------------------------------------------------------------

/// Slice-by-16 lookup tables: `CRC_TABLES[0]` is the classic byte
/// table; `CRC_TABLES[i]` advances a byte `i` further positions in one
/// lookup, so the hot loop folds 16 input bytes per iteration (snapshot
/// checksums sit on the cold-start path — restart latency is the whole
/// point).
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Folds one 32-bit word `w` whose bytes sit `pos * 4` bytes before the
/// end of the 16-byte block.
#[inline]
fn crc_fold(w: u32, pos: usize) -> u32 {
    let base = pos * 4;
    CRC_TABLES[base + 3][(w & 0xFF) as usize]
        ^ CRC_TABLES[base + 2][((w >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[base + 1][((w >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[base][(w >> 24) as usize]
}

/// CRC32 (reflected, polynomial `0xEDB88320`, init/final-xor
/// `0xFFFFFFFF`) — bit-compatible with zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let word = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        crc = crc_fold(word(&chunk[0..4]) ^ crc, 3)
            ^ crc_fold(word(&chunk[4..8]), 2)
            ^ crc_fold(word(&chunk[8..12]), 1)
            ^ crc_fold(word(&chunk[12..16]), 0);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian payload encoding helpers.
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian cursor over one payload (or the file
/// header). Every read returns [`SnapshotError::Truncated`] instead of
/// slicing out of range.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8], context: &'static str) -> ByteReader<'a> {
        ByteReader {
            bytes,
            pos: 0,
            context,
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated {
                context: self.context,
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            context: "non-UTF-8 string",
        })
    }

    /// Reads a `u64` element count and validates it against the bytes
    /// still present (`elem_min_bytes` ≥ 1 per element), so a forged
    /// count can never drive an oversized allocation.
    fn counted(&mut self, elem_min_bytes: usize) -> Result<usize, SnapshotError> {
        let count = self.u64()?;
        self.check_count(count, elem_min_bytes)
    }

    /// Like [`ByteReader::counted`] with a `u32` count on the wire.
    fn counted_u32(&mut self, elem_min_bytes: usize) -> Result<usize, SnapshotError> {
        let count = self.u32()? as u64;
        self.check_count(count, elem_min_bytes)
    }

    fn check_count(&self, count: u64, elem_min_bytes: usize) -> Result<usize, SnapshotError> {
        let fits = count
            .checked_mul(elem_min_bytes as u64)
            .is_some_and(|total| total <= self.remaining() as u64);
        if !fits {
            return Err(SnapshotError::Malformed {
                context: "element count larger than the section holding it",
            });
        }
        Ok(count as usize)
    }

    /// Asserts the payload was consumed exactly.
    fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                extra: self.remaining() as u64,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container: sections with tags, lengths, and CRCs.
// ---------------------------------------------------------------------------

/// Assembles a complete snapshot from `(tag, payload)` sections.
fn assemble(kind: u32, sections: Vec<([u8; 4], Vec<u8>)>) -> Vec<u8> {
    let total: usize = sections.iter().map(|(_, p)| p.len() + 16).sum();
    let mut out = Vec::with_capacity(20 + total);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, kind);
    put_u32(&mut out, sections.len() as u32);
    for (tag, payload) in sections {
        out.extend_from_slice(&tag);
        put_u64(&mut out, payload.len() as u64);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
    }
    out
}

/// Sequential section reader: parses the header, then hands out
/// CRC-verified payloads in the fixed per-kind schedule.
struct Container<'a> {
    reader: ByteReader<'a>,
    sections_left: u32,
}

impl<'a> Container<'a> {
    fn open(bytes: &'a [u8], expected_kind: u32) -> Result<Container<'a>, SnapshotError> {
        let mut reader = ByteReader::new(bytes, "snapshot header");
        let magic = reader.take(8)?;
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(SnapshotError::BadMagic { found });
        }
        let version = reader.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let kind = reader.u32()?;
        if kind != expected_kind {
            return Err(SnapshotError::WrongKind {
                found: kind,
                expected: expected_kind,
            });
        }
        let sections_left = reader.u32()?;
        Ok(Container {
            reader,
            sections_left,
        })
    }

    /// Reads the next section, which must carry `tag`; verifies its CRC
    /// and returns a cursor over the payload.
    fn section(
        &mut self,
        tag: [u8; 4],
        context: &'static str,
    ) -> Result<ByteReader<'a>, SnapshotError> {
        if self.sections_left == 0 {
            return Err(SnapshotError::Truncated {
                context,
                needed: 1,
                available: 0,
            });
        }
        self.sections_left -= 1;
        let found_tag = self.reader.take(4)?;
        if found_tag != tag {
            let mut found = [0u8; 4];
            found.copy_from_slice(found_tag);
            return Err(SnapshotError::UnexpectedSection {
                found,
                expected: tag,
            });
        }
        let len = self.reader.u64()?;
        let stored = self.reader.u32()?;
        if len > self.reader.remaining() as u64 {
            // An oversized declared length must fail *here*, before any
            // slice or allocation happens.
            return Err(SnapshotError::Truncated {
                context,
                needed: len,
                available: self.reader.remaining() as u64,
            });
        }
        let payload = self.reader.take(len as usize)?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch {
                tag,
                stored,
                computed,
            });
        }
        Ok(ByteReader::new(payload, context))
    }

    /// Asserts every declared section was consumed and nothing trails.
    fn finish(self) -> Result<(), SnapshotError> {
        if self.sections_left != 0 {
            return Err(SnapshotError::Malformed {
                context: "section count larger than the sections present",
            });
        }
        self.reader.finish()
    }
}

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

fn vocab_payload(v: &Vocabulary) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, v.len() as u64);
    for id in 0..v.len() as TermId {
        put_str(&mut buf, v.term(id));
    }
    buf
}

fn read_vocab(mut r: ByteReader<'_>) -> Result<Vocabulary, SnapshotError> {
    let n = r.counted(4)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(r.str()?.to_owned());
    }
    let vocab = Vocabulary::from_terms(terms).ok_or(SnapshotError::Malformed {
        // A duplicate term would silently renumber every id after it.
        context: "duplicate term in vocabulary",
    })?;
    r.finish()?;
    Ok(vocab)
}

// ---------------------------------------------------------------------------
// Corpus (vocabulary + frozen statistics + documents)
// ---------------------------------------------------------------------------

fn stats_payload(c: &Corpus) -> Vec<u8> {
    let mut buf = Vec::new();
    let n = c.num_terms();
    put_u64(&mut buf, n as u64);
    for t in 0..n as TermId {
        put_u32(&mut buf, c.doc_freq(t));
    }
    for &idf in c.idf_table() {
        put_f64(&mut buf, idf);
    }
    buf
}

fn read_stats(
    mut r: ByteReader<'_>,
    num_terms: usize,
) -> Result<(Vec<u32>, Vec<f64>), SnapshotError> {
    let n = r.counted(12)?;
    if n != num_terms {
        return Err(SnapshotError::Malformed {
            context: "statistics table size disagrees with the vocabulary",
        });
    }
    // One bounds check per table, then chunked decodes (`counted`
    // proved the bytes are present).
    let mut doc_freq = Vec::with_capacity(n);
    let raw_df = r.take(n * 4)?;
    for b in raw_df.chunks_exact(4) {
        doc_freq.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
    }
    let mut idf = Vec::with_capacity(n);
    let raw_idf = r.take(n * 8)?;
    for b in raw_idf.chunks_exact(8) {
        let v = f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]));
        if !v.is_finite() || !(0.0..=MAX_STORED_VALUE).contains(&v) {
            // Scores built on a negative IDF panic `Score::new` at query
            // time, and an implausibly huge one overflows the query-time
            // sum to +inf (same panic) — reject both at the door, like
            // every other CRC-valid-but-inconsistent payload.
            return Err(SnapshotError::Malformed {
                context: "IDF weight outside the plausible range",
            });
        }
        idf.push(v);
    }
    r.finish()?;
    Ok((doc_freq, idf))
}

fn docs_payload(c: &Corpus) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, c.num_docs() as u64);
    for doc in c.docs() {
        put_str(&mut buf, &doc.title);
        put_u32(&mut buf, doc.len);
        put_u32(&mut buf, doc.terms.len() as u32);
        for &(t, tf) in &doc.terms {
            put_u32(&mut buf, t);
            put_u32(&mut buf, tf);
        }
    }
    buf
}

fn read_docs(mut r: ByteReader<'_>, num_terms: usize) -> Result<Vec<Document>, SnapshotError> {
    let n = r.counted(12)?;
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        let title = r.str()?.to_owned();
        let len = r.u32()?;
        let n_terms = r.counted_u32(8)?;
        let mut terms: Vec<(TermId, u32)> = Vec::with_capacity(n_terms);
        // One bounds check for the doc's whole signature, then a chunked
        // decode (`counted_u32` proved the bytes are present).
        let pairs = r.take(n_terms * 8)?;
        for pair in pairs.chunks_exact(8) {
            let t = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
            let tf = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
            if (t as usize) >= num_terms {
                return Err(SnapshotError::Malformed {
                    context: "document references a term outside the vocabulary",
                });
            }
            if tf == 0 {
                return Err(SnapshotError::Malformed {
                    context: "zero term frequency in a document signature",
                });
            }
            if terms.last().is_some_and(|&(prev, _)| prev >= t) {
                // `Document::tf` binary-searches; an unsorted signature
                // would silently mis-score instead of failing loudly.
                return Err(SnapshotError::Malformed {
                    context: "document term signature not strictly sorted",
                });
            }
            terms.push((t, tf));
        }
        docs.push(Document { title, terms, len });
    }
    r.finish()?;
    Ok(docs)
}

fn corpus_sections(c: &Corpus, out: &mut Vec<([u8; 4], Vec<u8>)>) {
    out.push((TAG_VOCAB, vocab_payload(c.vocab())));
    out.push((TAG_STATS, stats_payload(c)));
    out.push((TAG_DOCS, docs_payload(c)));
}

fn read_corpus_sections(container: &mut Container<'_>) -> Result<Corpus, SnapshotError> {
    let vocab = read_vocab(container.section(TAG_VOCAB, "vocabulary section")?)?;
    let (doc_freq, idf) = read_stats(
        container.section(TAG_STATS, "statistics section")?,
        vocab.len(),
    )?;
    let docs = read_docs(
        container.section(TAG_DOCS, "documents section")?,
        vocab.len(),
    )?;
    Ok(Corpus::from_parts(vocab, docs, doc_freq, idf))
}

/// Serializes a [`Corpus`] (vocabulary, frozen statistics, documents) to
/// snapshot bytes.
pub fn corpus_to_bytes(c: &Corpus) -> Vec<u8> {
    let mut sections = Vec::new();
    corpus_sections(c, &mut sections);
    assemble(KIND_CORPUS, sections)
}

/// Decodes a [`Corpus`] snapshot produced by [`corpus_to_bytes`]. The
/// result is bit-identical to the corpus that was saved: document
/// signatures, document frequencies, and every IDF weight's exact bits.
pub fn corpus_from_bytes(bytes: &[u8]) -> Result<Corpus, SnapshotError> {
    let mut container = Container::open(bytes, KIND_CORPUS)?;
    let corpus = read_corpus_sections(&mut container)?;
    container.finish()?;
    Ok(corpus)
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written
/// and fsynced first, then renamed over the target — so a crash mid-save
/// can truncate only the temp file, never the previous good snapshot
/// (which is the whole point of checkpointing for crash recovery).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::io::Write;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    Ok(result?)
}

/// Writes a [`Corpus`] snapshot to `path` (atomically — sibling temp
/// file + fsync + rename). Returns the bytes written.
pub fn save_corpus(path: impl AsRef<Path>, c: &Corpus) -> Result<u64, SnapshotError> {
    let bytes = corpus_to_bytes(c);
    write_atomic(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a [`Corpus`] snapshot from `path`.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<Corpus, SnapshotError> {
    corpus_from_bytes(&std::fs::read(path)?)
}

// ---------------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------------

fn index_payload(index: &InvertedIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, index.num_terms() as u64);
    for t in 0..index.num_terms() as TermId {
        let list = index.postings(t);
        put_u64(&mut buf, list.len() as u64);
        for p in list {
            put_u32(&mut buf, p.doc);
            put_u32(&mut buf, p.tf);
            put_f64(&mut buf, p.partial);
        }
    }
    buf
}

/// Decodes one inverted-index payload. `expected_terms` / `num_docs`
/// tighten validation when the surrounding snapshot knows the corpus
/// shape (a standalone index snapshot does not).
fn read_index_payload(
    mut r: ByteReader<'_>,
    expected_terms: Option<usize>,
    num_docs: Option<usize>,
) -> Result<InvertedIndex, SnapshotError> {
    let n_terms = r.counted(8)?;
    if expected_terms.is_some_and(|want| want != n_terms) {
        return Err(SnapshotError::Malformed {
            context: "segment term count disagrees with the corpus vocabulary",
        });
    }
    let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let n = r.counted(16)?;
        let mut list: Vec<Posting> = Vec::with_capacity(n);
        // One bounds check per list, then a chunked decode (`counted`
        // proved the bytes are present).
        let raw = r.take(n * 16)?;
        for entry in raw.chunks_exact(16) {
            let doc = u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]);
            let tf = u32::from_le_bytes([entry[4], entry[5], entry[6], entry[7]]);
            let partial = f64::from_bits(u64::from_le_bytes([
                entry[8], entry[9], entry[10], entry[11], entry[12], entry[13], entry[14],
                entry[15],
            ]));
            if !partial.is_finite() || !(0.0..=MAX_STORED_VALUE).contains(&partial) {
                // `posting_order` (and every downstream sort) requires
                // total-ordering partials, and `ScanSource` feeds the
                // value straight into `Score::new`, which panics on
                // negatives (and on the +inf an implausibly huge value
                // produces when summed) — a forged value here must be a
                // typed error, not a query-time panic.
                return Err(SnapshotError::Malformed {
                    context: "posting partial score outside the plausible range",
                });
            }
            if num_docs.is_some_and(|n| doc as usize >= n) {
                return Err(SnapshotError::Malformed {
                    context: "posting references a document outside the corpus",
                });
            }
            let posting = Posting { doc, tf, partial };
            if list
                .last()
                .is_some_and(|prev| InvertedIndex::posting_order(prev, &posting).is_gt())
            {
                return Err(SnapshotError::Malformed {
                    context: "posting list not in (partial desc, doc asc) order",
                });
            }
            list.push(posting);
        }
        lists.push(list);
    }
    r.finish()?;
    Ok(InvertedIndex::from_sorted_lists(lists))
}

/// Serializes an [`InvertedIndex`] to snapshot bytes. Stored partial
/// scores travel as [`f64::to_bits`] words — the load is bit-exact.
pub fn index_to_bytes(index: &InvertedIndex) -> Vec<u8> {
    assemble(KIND_INDEX, vec![(TAG_INDEX, index_payload(index))])
}

/// Decodes an [`InvertedIndex`] snapshot produced by [`index_to_bytes`].
pub fn index_from_bytes(bytes: &[u8]) -> Result<InvertedIndex, SnapshotError> {
    let mut container = Container::open(bytes, KIND_INDEX)?;
    let index = read_index_payload(
        container.section(TAG_INDEX, "inverted index section")?,
        None,
        None,
    )?;
    container.finish()?;
    Ok(index)
}

/// Writes an [`InvertedIndex`] snapshot to `path`. Returns the bytes
/// written.
pub fn save_index(path: impl AsRef<Path>, index: &InvertedIndex) -> Result<u64, SnapshotError> {
    let bytes = index_to_bytes(index);
    write_atomic(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads an [`InvertedIndex`] snapshot from `path`.
pub fn load_index(path: impl AsRef<Path>) -> Result<InvertedIndex, SnapshotError> {
    index_from_bytes(&std::fs::read(path)?)
}

// ---------------------------------------------------------------------------
// SegmentedIndex (the full serving state)
// ---------------------------------------------------------------------------

fn weights_payload(weights: &[f64]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, weights.len() as u64);
    for &w in weights {
        put_f64(&mut buf, w);
    }
    buf
}

fn read_weights(mut r: ByteReader<'_>, num_docs: usize) -> Result<Vec<f64>, SnapshotError> {
    let n = r.counted(8)?;
    if n != num_docs {
        return Err(SnapshotError::Malformed {
            context: "weight table size disagrees with the document count",
        });
    }
    let mut weights = Vec::with_capacity(n);
    let raw = r.take(n * 8)?;
    for b in raw.chunks_exact(8) {
        let w = f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]));
        if !w.is_finite() || !(0.0..=MAX_STORED_VALUE).contains(&w) {
            // `W(d)` is a sum of non-negative IDF terms; a negative or
            // implausibly huge value is forged and would skew (or
            // overflow) the similarity prefilter.
            return Err(SnapshotError::Malformed {
                context: "document weight outside the plausible range",
            });
        }
        weights.push(w);
    }
    r.finish()?;
    Ok(weights)
}

fn tombstones_payload(deleted: &Tombstones) -> Vec<u8> {
    let mut buf = Vec::new();
    let words = deleted.words();
    put_u64(&mut buf, words.len() as u64);
    for &w in words {
        put_u64(&mut buf, w);
    }
    buf
}

fn read_tombstones(mut r: ByteReader<'_>, num_docs: usize) -> Result<Tombstones, SnapshotError> {
    let n = r.counted(8)?;
    if n > num_docs.div_ceil(64) {
        return Err(SnapshotError::Malformed {
            context: "tombstone bitset wider than the document id space",
        });
    }
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(r.u64()?);
    }
    if let Some(&last) = words.last() {
        // A mark past the last allocated id would make the live-document
        // accounting (`num_docs - deleted`) underflow.
        let used_bits = num_docs - (words.len() - 1) * 64;
        if used_bits < 64 && last >> used_bits != 0 {
            return Err(SnapshotError::Malformed {
                context: "tombstone set for an unallocated document id",
            });
        }
    }
    r.finish()?;
    Ok(Tombstones::from_words(words))
}

/// Serializes a full [`SegmentedIndex`] — corpus epoch, incremental
/// weight table, every segment's posting lists (bit-exact), tombstones,
/// and the compaction counter — plus a caller-supplied `generation`
/// (the serving engine's snapshot epoch; pass 0 when not serving).
pub fn segmented_to_bytes(index: &SegmentedIndex, generation: u64) -> Vec<u8> {
    let mut meta = Vec::new();
    put_u64(&mut meta, generation);
    put_u64(&mut meta, index.compactions());
    put_u64(&mut meta, index.num_segments() as u64);
    let mut sections = vec![(TAG_META, meta)];
    corpus_sections(index.corpus(), &mut sections);
    sections.push((TAG_WEIGHTS, weights_payload(index.weights())));
    sections.push((TAG_TOMB, tombstones_payload(index.tombstone_set())));
    for segment in index.segments() {
        sections.push((TAG_SEGMENT, index_payload(segment.index())));
    }
    assemble(KIND_SEGMENTED, sections)
}

/// Decodes a [`SegmentedIndex`] snapshot produced by
/// [`segmented_to_bytes`]; returns the index and the saved generation.
///
/// The loaded index is **byte-identical** to the saved one: every scan
/// and threshold-algorithm read (hits, metrics, early-stop point)
/// reproduces the in-memory engine's bits, and
/// [`SegmentedIndex::verify_rebuild_equivalence`] holds on the loaded
/// state exactly as it did on the saved one (`tests/persistence.rs`).
pub fn segmented_from_bytes(bytes: &[u8]) -> Result<(SegmentedIndex, u64), SnapshotError> {
    let mut container = Container::open(bytes, KIND_SEGMENTED)?;
    let mut meta = container.section(TAG_META, "snapshot meta section")?;
    let generation = meta.u64()?;
    let compactions = meta.u64()?;
    let n_segments = meta.u64()?;
    meta.finish()?;
    if n_segments == 0 {
        return Err(SnapshotError::Malformed {
            context: "snapshot declares zero segments",
        });
    }
    let corpus = read_corpus_sections(&mut container)?;
    let weights = read_weights(
        container.section(TAG_WEIGHTS, "weight table section")?,
        corpus.num_docs(),
    )?;
    let deleted = read_tombstones(
        container.section(TAG_TOMB, "tombstone section")?,
        corpus.num_docs(),
    )?;
    let mut segments = Vec::new();
    // Segments must cover pairwise-disjoint doc-id sets — the invariant
    // the merged-bound soundness proof (DESIGN.md §8) rests on; an
    // overlap would serve duplicate hits, so it is rejected like every
    // other CRC-valid-but-inconsistent payload.
    let words = corpus.num_docs().div_ceil(64);
    let mut claimed = vec![0u64; words];
    for _ in 0..n_segments {
        let index = read_index_payload(
            container.section(TAG_SEGMENT, "segment section")?,
            Some(corpus.num_terms()),
            Some(corpus.num_docs()),
        )?;
        let mut mine = vec![0u64; words];
        for t in 0..index.num_terms() as TermId {
            for p in index.postings(t) {
                mine[p.doc as usize / 64] |= 1u64 << (p.doc as usize % 64);
            }
        }
        for (seen, m) in claimed.iter_mut().zip(&mine) {
            if *seen & *m != 0 {
                return Err(SnapshotError::Malformed {
                    context: "two segments claim the same document",
                });
            }
            *seen |= *m;
        }
        segments.push(Arc::new(Segment::new(index)));
    }
    container.finish()?;
    Ok((
        SegmentedIndex::from_parts(
            Arc::new(corpus),
            Arc::new(weights),
            segments,
            deleted,
            compactions,
        ),
        generation,
    ))
}

/// Writes a [`SegmentedIndex`] snapshot (plus the caller's generation)
/// to `path`. Returns the bytes written.
pub fn save_segmented(
    path: impl AsRef<Path>,
    index: &SegmentedIndex,
    generation: u64,
) -> Result<u64, SnapshotError> {
    let bytes = segmented_to_bytes(index, generation);
    write_atomic(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a [`SegmentedIndex`] snapshot (and its saved generation) from
/// `path`.
pub fn load_segmented(path: impl AsRef<Path>) -> Result<(SegmentedIndex, u64), SnapshotError> {
    segmented_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, generate};

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The canonical IEEE check value, plus zlib-verified spot checks.
        // "123456789" (9 bytes) covers only the byte-at-a-time remainder
        // loop; the 43-byte fox sentence drives the slice-by-16 fold
        // path (2 full blocks + 11 remainder bytes) against a pinned
        // external value, so a table-indexing bug in `crc_fold` cannot
        // hide behind writer/reader sharing one implementation.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"divtopk"), crc32(b"divtopk"));
        assert_ne!(crc32(b"divtopk"), crc32(b"divtopj"));
        // Fold path ≡ remainder path on the same input.
        let long: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut byte_at_a_time = 0xFFFF_FFFFu32;
        for &b in &long {
            byte_at_a_time = (byte_at_a_time >> 8)
                ^ CRC_TABLES[0][((byte_at_a_time ^ b as u32) & 0xFF) as usize];
        }
        assert_eq!(crc32(&long), byte_at_a_time ^ 0xFFFF_FFFF);
    }

    #[test]
    fn corpus_round_trips_bit_for_bit() {
        let corpus = generate(&SynthConfig::tiny());
        let loaded = corpus_from_bytes(&corpus_to_bytes(&corpus)).unwrap();
        assert_eq!(loaded.num_docs(), corpus.num_docs());
        assert_eq!(loaded.num_terms(), corpus.num_terms());
        assert_eq!(loaded.docs(), corpus.docs());
        for t in 0..corpus.num_terms() as TermId {
            assert_eq!(loaded.doc_freq(t), corpus.doc_freq(t));
            assert_eq!(loaded.idf(t).to_bits(), corpus.idf(t).to_bits());
            assert_eq!(
                loaded.vocab().term(t),
                corpus.vocab().term(t),
                "term {t} renamed"
            );
        }
    }

    #[test]
    fn index_round_trips_bit_for_bit() {
        let corpus = generate(&SynthConfig::tiny());
        let index = InvertedIndex::build(&corpus);
        let loaded = index_from_bytes(&index_to_bytes(&index)).unwrap();
        assert_eq!(loaded.num_terms(), index.num_terms());
        assert_eq!(loaded.num_postings(), index.num_postings());
        for t in 0..index.num_terms() as TermId {
            let (a, b) = (index.postings(t), loaded.postings(t));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!((x.doc, x.tf), (y.doc, y.tf));
                assert_eq!(x.partial.to_bits(), y.partial.to_bits());
            }
        }
    }

    #[test]
    fn implausibly_large_idf_is_rejected_even_with_a_valid_crc() {
        // Each value individually finite is not enough: 1e200 + 1e200
        // at query time is +inf → `Score::new` panic. The plausibility
        // cap stops the forged table at decode.
        let mut b = crate::corpus::CorpusBuilder::with_synthetic_vocab(2);
        b.add_tokens("d".into(), vec![0, 1]);
        let good = b.build();
        let forged = Corpus::from_parts(
            good.vocab().clone(),
            good.docs().to_vec(),
            vec![1, 1],
            vec![1e200, 1e200],
        );
        match corpus_from_bytes(&corpus_to_bytes(&forged)) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("IDF"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn saves_are_atomic_and_leave_no_temp_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("divtopk-atomic-{}.snapshot", std::process::id()));
        let small = generate(&SynthConfig {
            num_docs: 20,
            ..SynthConfig::tiny()
        });
        let large = generate(&SynthConfig {
            num_docs: 40,
            ..SynthConfig::tiny()
        });
        // Overwriting a longer snapshot with a shorter one must leave
        // exactly the new bytes (rename semantics, not in-place write).
        save_corpus(&path, &large).unwrap();
        save_corpus(&path, &small).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(loaded.num_docs(), 20);
        let tmp_left = std::fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with(&format!(
                    "divtopk-atomic-{}.snapshot.tmp",
                    std::process::id()
                ))
        });
        assert!(!tmp_left, "temp file leaked");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn negative_partials_are_rejected_even_with_a_valid_crc() {
        // `ScanSource` feeds stored partials straight into `Score::new`,
        // which panics on negatives — so a forged-but-CRC-valid snapshot
        // must be stopped at decode, not at query time.
        let index = InvertedIndex::from_sorted_lists(vec![vec![Posting {
            doc: 0,
            tf: 1,
            partial: -1.0,
        }]]);
        match index_from_bytes(&index_to_bytes(&index)) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("partial"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_segments_are_rejected() {
        // Disjoint segment doc sets are the invariant the merged-bound
        // soundness proof rests on; a snapshot whose segments share a
        // document must not load.
        let corpus = generate(&SynthConfig::tiny());
        let seg_a = Segment::new(InvertedIndex::build_range(&corpus, 0..40));
        let seg_b = Segment::new(InvertedIndex::build_range(&corpus, 30..80));
        let overlapping = SegmentedIndex::from_parts(
            Arc::new(corpus.clone()),
            Arc::new(crate::search::doc_weights(&corpus)),
            vec![Arc::new(seg_a), Arc::new(seg_b)],
            Tombstones::default(),
            0,
        );
        match segmented_from_bytes(&segmented_to_bytes(&overlapping, 0)) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("same document"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn kind_confusion_is_a_typed_error() {
        let corpus = generate(&SynthConfig::tiny());
        let bytes = corpus_to_bytes(&corpus);
        assert!(matches!(
            segmented_from_bytes(&bytes),
            Err(SnapshotError::WrongKind {
                found: KIND_CORPUS,
                expected: KIND_SEGMENTED
            })
        ));
        assert!(matches!(
            index_from_bytes(&bytes),
            Err(SnapshotError::WrongKind { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        bytes[0] ^= 0xFF;
        bytes[8] = 99; // version field
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn empty_input_is_truncated_not_a_panic() {
        assert!(matches!(
            corpus_from_bytes(&[]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_section_length_is_rejected_before_any_slice() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        // First section header starts at offset 20; its u64 length at 24.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        bytes.push(0);
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }
}
