//! Fixed-size Arc-shared append-only chunks — the O(1)-COW document
//! store behind [`Corpus`](crate::corpus::Corpus) and the segmented
//! weight table (DESIGN.md §14).
//!
//! The PR-4 copy-on-write add path cloned the *entire* document list on
//! every mutation batch (`Arc::make_mut` over one big `Vec<Document>`),
//! an O(corpus) cost the DESIGN §9 caveat documented. [`ChunkedVec`]
//! fixes it structurally: items live in fixed-size chunks of
//! [`CHUNK`] = 1024 elements, each behind its own [`Arc`]. Cloning the
//! vector clones `n / CHUNK` pointers (no items); appending deep-copies
//! at most the one partial tail chunk (≤ CHUNK items, O(1) amortized
//! per batch). All chunks except the last are exactly [`CHUNK`] long —
//! the invariant that makes indexing two shifts and keeps chunk
//! boundaries stable, so a full chunk's serialized form never changes
//! once sealed and incremental snapshots (DESIGN.md §14) can skip it
//! by fingerprint.
//!
//! Per-chunk content fingerprints ([`ChunkedVec::chunk_fingerprint`])
//! are memoized in a [`OnceLock`] shared through the `Arc`, so across a
//! checkpoint sequence each sealed chunk is hashed once, ever — the
//! memo survives COW clones of the vector (the `Arc` is shared) and is
//! reset only when a chunk is actually deep-copied for mutation.

use std::sync::{Arc, OnceLock};

/// Items per chunk. A power of two so indexing is a shift and a mask;
/// 1024 documents ≈ tens of KiB per chunk file, large enough that the
/// manifest stays small and small enough that the rewritten tail is
/// cheap.
pub const CHUNK: usize = 1024;
const CHUNK_SHIFT: u32 = CHUNK.trailing_zeros();
const CHUNK_MASK: usize = CHUNK - 1;

/// 64-bit FNV-1a — the in-repo content hash used for chunk and segment
/// fingerprints (persist needs no cryptographic strength here: the
/// fingerprint guards against *stale lineage* reuse, and every file is
/// additionally CRC-checked byte-for-byte on load).
#[derive(Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Standard FNV-1a offset basis / prime.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u32` (little-endian, matching the snapshot encoding).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Final hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Content types that can feed a chunk fingerprint.
///
/// Implementations must hash every field that participates in the
/// serialized form — two values that fingerprint equal must serialize
/// equal, or incremental saves could wrongly reuse a stale chunk file.
pub trait Fingerprint {
    /// Feeds this value into the hasher.
    fn fingerprint_into(&self, h: &mut Fnv1a);
}

impl Fingerprint for f64 {
    fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.to_bits());
    }
}

/// One fixed-size run of items plus its memoized content hash.
#[derive(Debug)]
struct Chunk<T> {
    items: Vec<T>,
    /// Lazily computed by [`ChunkedVec::chunk_fingerprint`]; shared
    /// across COW clones through the `Arc`, reset on deep copy (the
    /// clone below) because the copy is about to be mutated.
    fp: OnceLock<u64>,
}

impl<T> Chunk<T> {
    fn new() -> Self {
        Chunk {
            items: Vec::with_capacity(CHUNK),
            fp: OnceLock::new(),
        }
    }
}

impl<T: Clone> Clone for Chunk<T> {
    fn clone(&self) -> Self {
        // A chunk is only ever deep-copied (`Arc::make_mut`) on the
        // append path, right before its items change — so the memoized
        // fingerprint must NOT travel with the copy.
        Chunk {
            items: self.items.clone(),
            fp: OnceLock::new(),
        }
    }
}

/// An append-only vector of `T` stored as fixed-size `Arc`-shared
/// chunks: O(1)-ish clones (pointer-per-chunk, no items), O(CHUNK)
/// worst-case copy-on-append, two-instruction indexing.
///
/// Invariant: every chunk except the last holds exactly [`CHUNK`]
/// items; the last holds `1..=CHUNK`. (An empty vector has no chunks.)
#[derive(Debug, Clone)]
pub struct ChunkedVec<T> {
    chunks: Vec<Arc<Chunk<T>>>,
    len: usize,
}

impl<T> ChunkedVec<T> {
    /// An empty vector.
    #[must_use]
    pub fn new() -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The item at `i`, or `None` past the end.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        Some(&self.chunks[i >> CHUNK_SHIFT].items[i & CHUNK_MASK])
    }

    /// Iterates items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.items.iter())
    }

    /// Number of chunks (`ceil(len / CHUNK)`).
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The items of chunk `i` as a slice. Panics past the end.
    #[must_use]
    pub fn chunk_items(&self, i: usize) -> &[T] {
        &self.chunks[i].items
    }

    /// True when chunk `i` is sealed (holds exactly [`CHUNK`] items) —
    /// sealed chunks never change again, so their serialized form is
    /// stable across checkpoints.
    #[must_use]
    pub fn chunk_is_sealed(&self, i: usize) -> bool {
        self.chunks[i].items.len() == CHUNK
    }
}

impl<T: Clone> ChunkedVec<T> {
    /// Appends one item, deep-copying at most the shared tail chunk.
    pub fn push(&mut self, value: T) {
        let start_new = match self.chunks.last() {
            None => true,
            Some(c) => c.items.len() == CHUNK,
        };
        if start_new {
            self.chunks.push(Arc::new(Chunk::new()));
        }
        // The tail exists by construction; `make_mut` deep-copies it
        // only when another clone still shares it (O(CHUNK) worst case).
        let idx = self.chunks.len() - 1;
        Arc::make_mut(&mut self.chunks[idx]).items.push(value);
        self.len += 1;
    }

    /// Rebuilds from parsed chunks, enforcing the all-but-last-sealed
    /// invariant. Used by the snapshot loader.
    pub(crate) fn from_chunks(parts: Vec<Vec<T>>) -> Option<Self> {
        let mut len = 0usize;
        for (i, part) in parts.iter().enumerate() {
            let sealed_required = i + 1 < parts.len();
            if part.is_empty() || part.len() > CHUNK || (sealed_required && part.len() != CHUNK) {
                return None;
            }
            len += part.len();
        }
        Some(ChunkedVec {
            chunks: parts
                .into_iter()
                .map(|items| {
                    Arc::new(Chunk {
                        items,
                        fp: OnceLock::new(),
                    })
                })
                .collect(),
            len,
        })
    }
}

impl<T: Fingerprint> ChunkedVec<T> {
    /// Content fingerprint of chunk `i`, memoized per chunk and shared
    /// across COW clones — across a checkpoint sequence each sealed
    /// chunk is hashed once, keeping incremental saves O(delta) CPU.
    #[must_use]
    pub fn chunk_fingerprint(&self, i: usize) -> u64 {
        let chunk = &self.chunks[i];
        *chunk.fp.get_or_init(|| {
            let mut h = Fnv1a::new();
            h.write_u64(chunk.items.len() as u64);
            for item in &chunk.items {
                item.fingerprint_into(&mut h);
            }
            h.finish()
        })
    }
}

impl<T> Default for ChunkedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Extend<T> for ChunkedVec<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Clone> FromIterator<T> for ChunkedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = ChunkedVec::new();
        v.extend(iter);
        v
    }
}

impl<T: PartialEq> PartialEq for ChunkedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for ChunkedVec<T> {}

impl<T> std::ops::Index<usize> for ChunkedVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &self.chunks[i >> CHUNK_SHIFT].items[i & CHUNK_MASK]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut v = ChunkedVec::new();
        for i in 0..(CHUNK * 2 + 17) {
            v.push(i as f64);
        }
        assert_eq!(v.len(), CHUNK * 2 + 17);
        assert_eq!(v.num_chunks(), 3);
        assert!(v.chunk_is_sealed(0) && v.chunk_is_sealed(1));
        assert!(!v.chunk_is_sealed(2));
        assert_eq!(v[0], 0.0);
        assert_eq!(v[CHUNK], CHUNK as f64);
        assert_eq!(v.get(v.len()), None);
        let collected: Vec<f64> = v.iter().copied().collect();
        assert_eq!(collected.len(), v.len());
        assert_eq!(collected[CHUNK + 5], (CHUNK + 5) as f64);
    }

    #[test]
    fn clone_shares_chunks_and_append_copies_only_the_tail() {
        let mut a: ChunkedVec<f64> = (0..(CHUNK + 10)).map(|i| i as f64).collect();
        let b = a.clone();
        // The sealed chunk is shared; appending to `a` must not touch it.
        assert!(Arc::ptr_eq(&a.chunks[0], &b.chunks[0]));
        a.push(-1.0);
        assert!(Arc::ptr_eq(&a.chunks[0], &b.chunks[0]));
        // The tail was deep-copied for `a` only.
        assert!(!Arc::ptr_eq(&a.chunks[1], &b.chunks[1]));
        assert_eq!(b.len(), CHUNK + 10);
        assert_eq!(a.len(), CHUNK + 11);
        assert_eq!(a[CHUNK + 10], -1.0);
        assert_eq!(b[CHUNK + 9], (CHUNK + 9) as f64);
    }

    #[test]
    fn fingerprints_are_memoized_across_clones_and_reset_on_mutation() {
        let mut a: ChunkedVec<f64> = (0..(CHUNK + 1)).map(|i| i as f64).collect();
        let sealed_fp = a.chunk_fingerprint(0);
        let tail_fp = a.chunk_fingerprint(1);
        let b = a.clone();
        // Memo travels with the shared Arc: no recompute, same value.
        assert_eq!(b.chunk_fingerprint(0), sealed_fp);
        a.push(99.0);
        // The mutated tail must re-fingerprint; the sealed chunk keeps
        // its memo and its value.
        assert_ne!(a.chunk_fingerprint(1), tail_fp);
        assert_eq!(a.chunk_fingerprint(0), sealed_fp);
        assert_eq!(b.chunk_fingerprint(1), tail_fp);
    }

    #[test]
    fn equal_content_fingerprints_equal() {
        let a: ChunkedVec<f64> = (0..10).map(|i| i as f64).collect();
        let b: ChunkedVec<f64> = (0..10).map(|i| i as f64).collect();
        let c: ChunkedVec<f64> = (0..10).map(|i| (i + 1) as f64).collect();
        assert_eq!(a, b);
        assert_eq!(a.chunk_fingerprint(0), b.chunk_fingerprint(0));
        assert_ne!(a, c);
        assert_ne!(a.chunk_fingerprint(0), c.chunk_fingerprint(0));
    }

    #[test]
    fn from_chunks_enforces_the_sealed_invariant() {
        assert!(ChunkedVec::from_chunks(vec![vec![1.0; CHUNK], vec![2.0; 3]]).is_some());
        assert!(ChunkedVec::from_chunks(vec![vec![1.0; 3], vec![2.0; 3]]).is_none());
        assert!(ChunkedVec::from_chunks(vec![vec![1.0; CHUNK + 1]]).is_none());
        assert!(ChunkedVec::from_chunks(vec![vec![], vec![2.0; 3]]).is_none());
        let ok = ChunkedVec::from_chunks(vec![vec![1.0; CHUNK], vec![2.0; 3]]).unwrap();
        assert_eq!(ok.len(), CHUNK + 3);
    }

    #[test]
    fn empty_vector_behaves() {
        let v: ChunkedVec<f64> = ChunkedVec::new();
        assert!(v.is_empty());
        assert_eq!(v.num_chunks(), 0);
        assert_eq!(v.get(0), None);
        assert_eq!(v.iter().count(), 0);
        let w = ChunkedVec::from_chunks(Vec::<Vec<f64>>::new()).unwrap();
        assert_eq!(v, w);
    }
}
