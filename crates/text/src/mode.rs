//! [`DiversifyMode`] — the single per-query selector for *how* results
//! are diversified.
//!
//! This replaces the old `SearchOptions { algorithm: ExactAlgorithm,
//! diversify: bool }` pair, which could name the exact family and the
//! off oracle but not MMR or any cheap rerank mode. Every strategy is a
//! leaf behind [`divtopk_core::diversify::Diversifier`]; this enum is
//! the typed handle callers, the cache-key fingerprint, and the wire
//! protocol all share.
//!
//! See DESIGN.md §15 for each mode's guarantee, cost model, and the
//! measured quality/latency frontier (BENCH_9 `frontier` suite).

use divtopk_core::{ExactAlgorithm, SearchError};

pub use crate::mmr::MmrConfig;
pub use divtopk_core::diversify::WindowConfig;

/// KNN-diversity configuration (arXiv cs/0310028).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnnConfig {
    /// How many nearest selected neighbors the dissimilarity term
    /// averages over.
    pub neighbors: usize,
}

impl Default for KnnConfig {
    /// The conventional default: 3 nearest neighbors.
    fn default() -> KnnConfig {
        KnnConfig { neighbors: 3 }
    }
}

/// Which diversification strategy a search runs.
///
/// All modes are deterministic (seed-free, doc-id tie-breaks) and all go
/// through the same result sources and admission checks; they differ in
/// guarantee and cost:
///
/// * [`Exact`](DiversifyMode::Exact) — the paper's exact diversified
///   top-k (max total score s.t. pairwise similarity ≤ τ), via
///   div-astar/dp/cut under Lemma-1/3 early stopping. The quality
///   oracle; NP-hard inner searches.
/// * [`None`](DiversifyMode::None) — diversity off: the plain relevance
///   top-k through the same machinery (edgeless diversity graph). The
///   relevance oracle.
/// * [`Mmr`](DiversifyMode::Mmr) — greedy marginal-relevance rerank of
///   an oversampled top-`4k` pool; penalizes redundancy, never forbids
///   it. `config.k` is ignored — [`SearchOptions::k`] governs.
/// * [`Window`](DiversifyMode::Window) — sliding-window max-per-source
///   spread with a score floor and deterministic rotations; the
///   production-cheap mode.
/// * [`Disc`](DiversifyMode::Disc) — DisC-style dissimilarity+coverage
///   greedy (maximal independent set of the pool in score order).
/// * [`Knn`](DiversifyMode::Knn) — greedy relevance × knn-dissimilarity
///   utility.
///
/// [`SearchOptions::k`]: crate::search::SearchOptions
#[derive(Debug, Clone, PartialEq)]
pub enum DiversifyMode {
    /// Exact diversified top-k with the given inner algorithm
    /// (div-cut by default — the paper's best).
    Exact(ExactAlgorithm),
    /// Diversity off: plain relevance top-k (the old `diversify: false`).
    None,
    /// MMR greedy rerank; `MmrConfig::k` is ignored at dispatch (the
    /// search's own `k` governs).
    Mmr(MmrConfig),
    /// Sliding-window max-per-source spread.
    Window(WindowConfig),
    /// DisC dissimilarity + coverage greedy.
    Disc,
    /// KNN-diversity greedy.
    Knn(KnnConfig),
}

impl Default for DiversifyMode {
    /// The paper's default: exact diversified top-k via div-cut.
    fn default() -> DiversifyMode {
        DiversifyMode::Exact(ExactAlgorithm::default())
    }
}

impl DiversifyMode {
    /// Exact mode with the default inner algorithm (div-cut).
    pub fn exact() -> DiversifyMode {
        DiversifyMode::Exact(ExactAlgorithm::default())
    }

    /// MMR with the given λ (`k` in the carried config is a placeholder —
    /// the search's own `k` governs selection size).
    pub fn mmr(lambda: f64) -> DiversifyMode {
        DiversifyMode::Mmr(MmrConfig { lambda, k: 0 })
    }

    /// Window spread with the Snippet-1 defaults (window 5, 2 per
    /// source, 0.5 score floor).
    pub fn window() -> DiversifyMode {
        DiversifyMode::Window(WindowConfig::default())
    }

    /// KNN-diversity with the default neighbor count.
    pub fn knn() -> DiversifyMode {
        DiversifyMode::Knn(KnnConfig::default())
    }

    /// Stable lower-case mode name for metrics, bench tables, and logs.
    /// Exact modes are suffixed with their inner algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            DiversifyMode::Exact(ExactAlgorithm::AStar) => "exact-astar",
            DiversifyMode::Exact(ExactAlgorithm::Dp) => "exact-dp",
            DiversifyMode::Exact(ExactAlgorithm::Cut) => "exact-cut",
            DiversifyMode::Exact(ExactAlgorithm::CutConfigured(_)) => "exact-cut-configured",
            DiversifyMode::None => "none",
            DiversifyMode::Mmr(_) => "mmr",
            DiversifyMode::Window(_) => "window",
            DiversifyMode::Disc => "disc",
            DiversifyMode::Knn(_) => "knn",
        }
    }

    /// Admission validation of the mode's own parameters, part of
    /// `SearchOptions::validate`. Every rejected knob is a typed
    /// [`SearchError::InvalidMode`] naming the parameter — the same
    /// fail-at-admission discipline as `τ` (a NaN λ, for instance, would
    /// otherwise silently collapse MMR into relevance-only ranking).
    pub fn validate(&self) -> Result<(), SearchError> {
        match self {
            DiversifyMode::Exact(_) | DiversifyMode::None | DiversifyMode::Disc => Ok(()),
            DiversifyMode::Mmr(config) => {
                if !config.lambda.is_finite() || !(0.0..=1.0).contains(&config.lambda) {
                    return Err(SearchError::InvalidMode {
                        detail: "mmr λ must be a number in [0, 1]",
                    });
                }
                Ok(())
            }
            DiversifyMode::Window(config) => {
                if config.window == 0 {
                    return Err(SearchError::InvalidMode {
                        detail: "window size must be ≥ 1",
                    });
                }
                if config.max_per_source == 0 {
                    return Err(SearchError::InvalidMode {
                        detail: "window max-per-source must be ≥ 1",
                    });
                }
                if !config.min_score_ratio.is_finite()
                    || !(0.0..=1.0).contains(&config.min_score_ratio)
                {
                    return Err(SearchError::InvalidMode {
                        detail: "window min-score-ratio must be a number in [0, 1]",
                    });
                }
                Ok(())
            }
            DiversifyMode::Knn(config) => {
                if config.neighbors == 0 {
                    return Err(SearchError::InvalidMode {
                        detail: "knn neighbor count must be ≥ 1",
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_exact_cut() {
        assert_eq!(
            DiversifyMode::default(),
            DiversifyMode::Exact(ExactAlgorithm::Cut)
        );
        assert_eq!(DiversifyMode::default().name(), "exact-cut");
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let modes = [
            DiversifyMode::Exact(ExactAlgorithm::AStar),
            DiversifyMode::Exact(ExactAlgorithm::Dp),
            DiversifyMode::exact(),
            DiversifyMode::None,
            DiversifyMode::mmr(0.7),
            DiversifyMode::window(),
            DiversifyMode::Disc,
            DiversifyMode::knn(),
        ];
        let names: Vec<&str> = modes.iter().map(|m| m.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        for bad in [f64::NAN, -0.1, 1.5] {
            assert!(matches!(
                DiversifyMode::mmr(bad).validate(),
                Err(SearchError::InvalidMode { .. })
            ));
        }
        assert!(
            DiversifyMode::Window(WindowConfig {
                window: 0,
                ..WindowConfig::default()
            })
            .validate()
            .is_err()
        );
        assert!(
            DiversifyMode::Window(WindowConfig {
                max_per_source: 0,
                ..WindowConfig::default()
            })
            .validate()
            .is_err()
        );
        assert!(
            DiversifyMode::Window(WindowConfig {
                min_score_ratio: f64::NAN,
                ..WindowConfig::default()
            })
            .validate()
            .is_err()
        );
        assert!(
            DiversifyMode::Knn(KnnConfig { neighbors: 0 })
                .validate()
                .is_err()
        );
        // Good knobs pass.
        for mode in [
            DiversifyMode::exact(),
            DiversifyMode::None,
            DiversifyMode::mmr(0.0),
            DiversifyMode::mmr(1.0),
            DiversifyMode::window(),
            DiversifyMode::Disc,
            DiversifyMode::knn(),
        ] {
            assert!(mode.validate().is_ok(), "{mode:?}");
        }
    }
}
