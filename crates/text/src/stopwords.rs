//! English stop-word list.
//!
//! The paper removes stop words before computing both document lengths and
//! the weighted Jaccard similarity (§8). This is the classic Van
//! Rijsbergen-style list trimmed to common web-search practice.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw stop-word list (lowercase).
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// True iff `word` (assumed lowercase) is a stop word.
#[inline]
pub fn is_stopword(word: &str) -> bool {
    stopword_set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_stopwords_detected() {
        for w in ["the", "and", "of", "is", "a"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["database", "diversified", "spokesman", "lake", "billion"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut seen = HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
            assert!(seen.insert(w), "duplicate stop word {w}");
        }
    }
}
