//! Maximal Marginal Relevance (MMR) — the related-work baseline.
//!
//! The paper's §9 contrasts its *exact* formulation against the dominant
//! two-step heuristic family [1, 5, 6, 11]: first fetch the top-`l`
//! (`l > k`) results by relevance alone, then greedily re-rank them by a
//! *usefulness* score mixing relevance with redundancy w.r.t. the already
//! selected results. Carbonell & Goldstein's MMR is the canonical member:
//!
//! ```text
//! next = argmax_{d ∈ R∖S} [ λ·score(d) − (1−λ)·max_{s ∈ S} sim(d, s) ]
//! ```
//!
//! Unlike Definition 1, MMR (a) never *excludes* similar results — it only
//! penalizes them, so near-duplicates can still appear; (b) is greedy, so
//! it inherits the unbounded approximation gap of §4's greedy example; and
//! (c) needs all `l` results up front (no early stop). It is implemented
//! here as a baseline for quality comparisons (see `quality.rs` and the
//! `figures` harness's AB5 notes).

use crate::corpus::Corpus;
use crate::document::DocId;
use crate::jaccard::weighted_jaccard;
use divtopk_core::{Score, Scored};

/// MMR configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MmrConfig {
    /// Trade-off: 1.0 = pure relevance, 0.0 = pure anti-redundancy.
    pub lambda: f64,
    /// How many results to select.
    pub k: usize,
}

impl MmrConfig {
    /// A common default (λ = 0.7).
    pub fn new(k: usize) -> MmrConfig {
        MmrConfig { lambda: 0.7, k }
    }

    /// Overrides λ.
    pub fn with_lambda(mut self, lambda: f64) -> MmrConfig {
        assert!((0.0..=1.0).contains(&lambda), "λ must be in [0, 1]");
        self.lambda = lambda;
        self
    }
}

/// Greedy MMR re-ranking of scored candidates with a generic similarity.
///
/// Scores are normalized by the maximum candidate score so λ weighs
/// comparable magnitudes. Returns at most `config.k` items in selection
/// order. `O(k · n)` similarity evaluations.
pub fn mmr_rerank<T: Clone>(
    candidates: &[Scored<T>],
    similarity: impl Fn(&T, &T) -> f64,
    config: &MmrConfig,
) -> Vec<Scored<T>> {
    let n = candidates.len();
    if n == 0 || config.k == 0 {
        return Vec::new();
    }
    let max_score = candidates
        .iter()
        .map(|c| c.score.get())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut selected: Vec<usize> = Vec::with_capacity(config.k.min(n));
    let mut remaining: Vec<usize> = (0..n).collect();
    // Max similarity of each remaining candidate to the selected set,
    // maintained incrementally.
    let mut max_sim = vec![0.0f64; n];

    while selected.len() < config.k && !remaining.is_empty() {
        let (pos, &best_idx) = remaining
            .iter()
            .enumerate()
            .max_by(|&(_, &a), &(_, &b)| {
                let ua = config.lambda * candidates[a].score.get() / max_score
                    - (1.0 - config.lambda) * max_sim[a];
                let ub = config.lambda * candidates[b].score.get() / max_score
                    - (1.0 - config.lambda) * max_sim[b];
                ua.partial_cmp(&ub)
                    .expect("finite utilities")
                    .then(b.cmp(&a))
            })
            .expect("non-empty remaining");
        remaining.swap_remove(pos);
        for &r in &remaining {
            let s = similarity(&candidates[r].item, &candidates[best_idx].item);
            if s > max_sim[r] {
                max_sim[r] = s;
            }
        }
        selected.push(best_idx);
    }
    selected
        .into_iter()
        .map(|i| candidates[i].clone())
        .collect()
}

/// MMR over documents with the corpus's weighted-Jaccard similarity
/// (Eq. 4) — the apples-to-apples baseline for the diversified search.
pub fn mmr_documents(
    corpus: &Corpus,
    candidates: &[Scored<DocId>],
    config: &MmrConfig,
) -> Vec<Scored<DocId>> {
    mmr_rerank(
        candidates,
        |&a, &b| weighted_jaccard(corpus, corpus.doc(a), corpus.doc(b)),
        config,
    )
}

/// Total relevance score of an MMR selection.
pub fn selection_score<T>(selection: &[Scored<T>]) -> Score {
    selection.iter().map(|r| r.score).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(items: &[(u32, f64)]) -> Vec<Scored<u32>> {
        items
            .iter()
            .map(|&(id, s)| Scored::new(id, Score::new(s)))
            .collect()
    }

    #[test]
    fn pure_relevance_is_plain_topk() {
        let cands = scored(&[(0, 5.0), (1, 9.0), (2, 7.0), (3, 1.0)]);
        let out = mmr_rerank(&cands, |_, _| 1.0, &MmrConfig::new(2).with_lambda(1.0));
        let ids: Vec<u32> = out.iter().map(|r| r.item).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn redundancy_penalty_demotes_duplicates() {
        // 0 and 1 are near-duplicates; 2 is distinct with a lower score.
        let cands = scored(&[(0, 10.0), (1, 9.9), (2, 6.0)]);
        let sim = |a: &u32, b: &u32| {
            if (*a, *b) == (0, 1) || (*a, *b) == (1, 0) {
                0.95
            } else {
                0.0
            }
        };
        let out = mmr_rerank(&cands, sim, &MmrConfig::new(2).with_lambda(0.5));
        let ids: Vec<u32> = out.iter().map(|r| r.item).collect();
        assert_eq!(
            ids,
            vec![0, 2],
            "the duplicate must lose to the distinct doc"
        );
    }

    #[test]
    fn mmr_does_not_exclude_duplicates_when_k_is_large() {
        // The key semantic difference from Definition 1: with room left,
        // MMR still emits the near-duplicate.
        let cands = scored(&[(0, 10.0), (1, 9.9), (2, 6.0)]);
        let sim = |a: &u32, b: &u32| if *a != *b && *a + *b == 1 { 0.95 } else { 0.0 };
        let out = mmr_rerank(&cands, sim, &MmrConfig::new(3).with_lambda(0.5));
        assert_eq!(out.len(), 3, "MMR penalizes but never drops");
    }

    #[test]
    fn empty_and_k_zero() {
        let none: Vec<Scored<u32>> = Vec::new();
        assert!(mmr_rerank(&none, |_, _| 0.0, &MmrConfig::new(3)).is_empty());
        let cands = scored(&[(0, 1.0)]);
        assert!(mmr_rerank(&cands, |_, _| 0.0, &MmrConfig::new(0)).is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let cands = scored(&[(0, 5.0), (1, 5.0), (2, 5.0)]);
        let a = mmr_rerank(&cands, |_, _| 0.0, &MmrConfig::new(2));
        let b = mmr_rerank(&cands, |_, _| 0.0, &MmrConfig::new(2));
        assert_eq!(
            a.iter().map(|r| r.item).collect::<Vec<_>>(),
            b.iter().map(|r| r.item).collect::<Vec<_>>()
        );
    }

    #[test]
    fn document_mmr_prefers_diverse_docs() {
        let mut b = Corpus::builder();
        b.add_text("dup1", "solar panels efficiency report");
        b.add_text("dup2", "solar panels efficiency report update");
        b.add_text("other", "wind turbines offshore installation");
        for i in 0..6 {
            b.add_text(&format!("f{i}"), "filler background noise text");
        }
        let corpus = b.build();
        let cands = vec![
            Scored::new(0u32, Score::new(10.0)),
            Scored::new(1u32, Score::new(9.5)),
            Scored::new(2u32, Score::new(7.0)),
        ];
        let out = mmr_documents(&corpus, &cands, &MmrConfig::new(2).with_lambda(0.5));
        let ids: Vec<DocId> = out.iter().map(|r| r.item).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(selection_score(&out), Score::new(17.0));
    }
}
