//! The segmented live-update index: LSM-style immutable segments,
//! tombstoned deletes, and size-tiered compaction — with from-scratch
//! rebuild equivalence as the core invariant (DESIGN.md §9).
//!
//! A [`SegmentedIndex`] is an append-only sequence of immutable
//! [`InvertedIndex`] chunks ([`Segment`]s) over **disjoint** global doc-id
//! sets, plus a [`Tombstones`] bitset marking deleted documents:
//!
//! * [`SegmentedIndex::add_docs`] appends documents to the corpus view and
//!   builds one new segment over exactly the new id range — O(batch), not
//!   O(corpus);
//! * [`SegmentedIndex::delete_docs`] only sets tombstone bits — the
//!   segments are never touched;
//! * [`SegmentedIndex::compact`] merges the smallest size tier of segments
//!   into one, dropping tombstoned postings, by **merging the stored
//!   posting lists** (never rescoring — the merged segment's partials are
//!   the original bits).
//!
//! ## Why the result is exactly a rebuild
//!
//! Scoring statistics (vocabulary, df, IDF) are **frozen at the epoch the
//! base corpus was built** ([`Corpus::append_frozen`]): every posting in
//! every segment carries the same global IDF and length normalization a
//! from-scratch [`InvertedIndex::build_where`] over the surviving
//! documents would compute, and every list is sorted by the same total
//! order `(partial desc, doc asc)`. Segment lists are therefore disjoint
//! sorted subsequences of the rebuilt lists, so a k-way merge with the
//! same tie-break, minus tombstones, reproduces the rebuilt lists *item
//! for item, bit for bit* — `tests/segments.rs` pins this for random
//! interleavings of adds, deletes, and compactions.
//!
//! ## Why bounds stay sound under deletion
//!
//! Two lines: a deletion only **shrinks** the candidate set, and an upper
//! bound for a set bounds every subset — so the per-segment sources'
//! unchanged bounds (which still cover the tombstoned docs) remain valid
//! for the live remainder, and their monotonicity is untouched because the
//! bound trajectory never depended on the filter. Reads go through the
//! existing [`MergedSource`] with a tombstone filter
//! ([`MergedSource::incremental_filtered`] /
//! [`MergedSource::bounding_filtered`]), so Lemmas 1–3 apply verbatim.

use crate::chunked::{ChunkedVec, Fnv1a};
use crate::corpus::Corpus;
use crate::document::{DocId, Document, TermId};
use crate::index::{InvertedIndex, Posting};
use crate::jaccard::total_weight;
use crate::query::KeywordQuery;
use crate::scan::ScanSource;
use crate::search::{SearchOptions, SearchOutput, doc_weights, search_with_source, validate_terms};
use crate::stopwords::is_stopword;
use crate::ta::TaSource;
use crate::tokenize::tokenize;
use divtopk_core::prefetch::{DEFAULT_PREFETCH_DEPTH, PrefetchedSource};
use divtopk_core::{MergedSource, SearchError, WorkerPool};
use std::ops::Range;
use std::sync::Arc;

/// A dense bitset over global doc ids marking deleted documents.
///
/// Tombstone marks are **permanent**: compaction drops a deleted
/// document's postings, but its id is never reused and its mark is never
/// cleared (the id space is append-only), so `contains` answers "was this
/// document ever deleted" for the index's whole lifetime.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    words: Vec<u64>,
    len: usize,
}

impl Tombstones {
    /// Marks `doc` deleted; returns true if it was live before.
    fn insert(&mut self, doc: DocId) -> bool {
        let (word, bit) = (doc as usize / 64, doc as usize % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// True iff `doc` is tombstoned.
    #[inline]
    pub fn contains(&self, doc: DocId) -> bool {
        self.words
            .get(doc as usize / 64)
            .is_some_and(|w| w & (1u64 << (doc as usize % 64)) != 0)
    }

    /// Number of tombstoned documents.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is tombstoned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the tombstoned doc ids in increasing order — the sparse
    /// form the snapshot manifest stores (O(#deleted) bytes, part of
    /// keeping checkpoints O(delta); see [`crate::persist`]).
    pub(crate) fn iter_ids(&self) -> impl Iterator<Item = DocId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |bit| word & (1u64 << bit) != 0)
                .map(move |bit| (w * 64 + bit) as DocId)
        })
    }

    /// Reassembles a tombstone set from decoded sparse doc ids (the
    /// caller has validated order and range).
    pub(crate) fn from_ids(ids: &[DocId]) -> Tombstones {
        let mut t = Tombstones::default();
        for &id in ids {
            t.insert(id);
        }
        t
    }
}

/// One immutable index chunk: an [`InvertedIndex`] over a subset of the
/// corpus's documents, disjoint from every other segment's subset.
#[derive(Debug)]
pub struct Segment {
    /// Lineage-unique id, assigned monotonically by the owning
    /// [`SegmentedIndex`] and never reused — the incremental snapshot
    /// layer (DESIGN.md §14) keys segment files by it.
    id: u64,
    index: InvertedIndex,
    /// Distinct documents with at least one posting in this segment —
    /// the segment's size for the tiered compaction policy.
    doc_count: usize,
    /// FNV-1a over the full posting content — the incremental snapshot
    /// layer's guard against reusing a stale on-disk segment file whose
    /// id happens to collide (e.g. across diverged lineages saved into
    /// the same directory).
    fingerprint: u64,
}

impl Segment {
    pub(crate) fn new(id: u64, index: InvertedIndex) -> Segment {
        // Count distinct docs via a bitset over the segment's own id
        // span: O(postings + span/64) instead of collect-sort-dedup —
        // this runs on every add batch and on every segment of a
        // snapshot load. The bitset is offset by the minimum doc id, so
        // a small late batch on a huge corpus (ids all near the top of
        // the global space) stays O(batch), not O(corpus). The content
        // fingerprint rides along in the same pass.
        let mut lo = DocId::MAX;
        let mut hi = 0;
        let mut any = false;
        let mut h = Fnv1a::new();
        for t in 0..index.num_terms() as TermId {
            let postings = index.postings(t);
            if postings.is_empty() {
                continue;
            }
            h.write_u32(t);
            h.write_u64(postings.len() as u64);
            for p in postings {
                lo = lo.min(p.doc);
                hi = hi.max(p.doc);
                any = true;
                h.write_u32(p.doc);
                h.write_u32(p.tf);
                h.write_u64(p.partial.to_bits());
            }
        }
        let fingerprint = h.finish();
        if !any {
            return Segment {
                id,
                index,
                doc_count: 0,
                fingerprint,
            };
        }
        let mut words = vec![0u64; ((hi - lo) as usize + 1).div_ceil(64)];
        for t in 0..index.num_terms() as TermId {
            for p in index.postings(t) {
                let bit = (p.doc - lo) as usize;
                words[bit / 64] |= 1u64 << (bit % 64);
            }
        }
        let doc_count = words.iter().map(|w| w.count_ones() as usize).sum();
        Segment {
            id,
            index,
            doc_count,
            fingerprint,
        }
    }

    /// Reassembles a segment from parts the snapshot layer persisted
    /// (DESIGN.md §14). The caller vouches for `fingerprint` and
    /// `doc_count`: the load path checks both against the manifest and
    /// the whole-file checksum instead of recomputing them here, so a
    /// cold start makes one pass over the posting bytes, not two.
    pub(crate) fn from_trusted_parts(
        id: u64,
        fingerprint: u64,
        doc_count: usize,
        index: InvertedIndex,
    ) -> Segment {
        Segment {
            id,
            index,
            doc_count,
            fingerprint,
        }
    }

    /// The segment's lineage-unique id (see the field docs).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// FNV-1a content fingerprint over the posting lists.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The segment's inverted index (global doc ids, frozen statistics).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Distinct documents materialized in this segment.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Size tier for compaction: `⌊log2(doc_count)⌋` (tier 0 for tiny
    /// segments) — segments in the same tier are within 2× of each other.
    fn tier(&self) -> u32 {
        self.doc_count.max(1).ilog2()
    }
}

/// The segmented live-update index (see module docs).
///
/// Cloning is cheap by design — segments, the corpus view, and the weight
/// table are behind [`Arc`]s — so a serving layer can snapshot the whole
/// structure per mutation (copy-on-write: only the parts a mutation
/// touches are deep-copied, via [`Arc::make_mut`]).
#[derive(Debug, Clone)]
pub struct SegmentedIndex {
    /// All documents ever added, with the frozen statistics epoch.
    corpus: Arc<Corpus>,
    /// Per-document total IDF weight under the frozen epoch (the
    /// similarity prefilter's `W(d)`), extended incrementally on add.
    /// Chunked like the document store, so COW clones share sealed
    /// chunks and an append copies at most the tail chunk.
    weights: ChunkedVec<f64>,
    segments: Vec<Arc<Segment>>,
    deleted: Tombstones,
    compactions: u64,
    /// Next segment id to hand out — monotonic, never reused, so every
    /// segment this lineage ever creates has a distinct id (the
    /// snapshot layer's file key).
    next_segment_id: u64,
}

impl SegmentedIndex {
    /// Builds a segmented index whose single base segment indexes all of
    /// `corpus`. The corpus's statistics become the frozen scoring epoch.
    pub fn build(corpus: Corpus) -> SegmentedIndex {
        SegmentedIndex::build_partitioned(corpus, 1)
    }

    /// Builds the base as `parts` round-robin segments (`doc mod parts`) —
    /// the same partition PR 3's sharded engine used, so a serving tier
    /// can treat base parallelism and live updates uniformly: both are
    /// just segments under one merged read path.
    ///
    /// # Panics
    /// Panics if `parts == 0` (a deployment configuration error).
    pub fn build_partitioned(corpus: Corpus, parts: usize) -> SegmentedIndex {
        assert!(parts >= 1, "segment partition count must be at least 1");
        let segments = (0..parts)
            .map(|p| {
                Arc::new(Segment::new(
                    p as u64,
                    InvertedIndex::build_where(&corpus, |d| d as usize % parts == p),
                ))
            })
            .collect();
        let weights = doc_weights(&corpus).into_iter().collect();
        SegmentedIndex {
            corpus: Arc::new(corpus),
            weights,
            segments,
            deleted: Tombstones::default(),
            compactions: 0,
            next_segment_id: parts as u64,
        }
    }

    /// Reassembles a segmented index from decoded snapshot parts
    /// ([`crate::persist`]); the caller has validated shape invariants
    /// (segment/corpus term-count agreement, posting order, id ranges).
    pub(crate) fn from_parts(
        corpus: Arc<Corpus>,
        weights: ChunkedVec<f64>,
        segments: Vec<Arc<Segment>>,
        deleted: Tombstones,
        compactions: u64,
        next_segment_id: u64,
    ) -> SegmentedIndex {
        SegmentedIndex {
            corpus,
            weights,
            segments,
            deleted,
            compactions,
            next_segment_id,
        }
    }

    /// The tombstone bitset, for snapshot serialization
    /// ([`crate::persist`]).
    pub(crate) fn tombstone_set(&self) -> &Tombstones {
        &self.deleted
    }

    /// The corpus view: every document ever added, under the frozen
    /// statistics epoch. Deleted documents remain addressable (their ids
    /// are permanent) but never surface in reads.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The corpus view behind its shared handle (for snapshot layers that
    /// hand out corpus access outliving a borrow of `self`).
    pub fn shared_corpus(&self) -> Arc<Corpus> {
        Arc::clone(&self.corpus)
    }

    /// Per-document total IDF weights under the frozen epoch, in the
    /// chunked COW representation (a [`crate::search::WeightTable`]).
    pub fn weights(&self) -> &ChunkedVec<f64> {
        &self.weights
    }

    /// The next segment id this lineage would assign (monotonic; also
    /// an upper bound on every existing segment's id).
    pub fn next_segment_id(&self) -> u64 {
        self.next_segment_id
    }

    /// The current segments, oldest first.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total documents ever added (live + tombstoned).
    pub fn num_docs(&self) -> usize {
        self.corpus.num_docs()
    }

    /// Live (non-tombstoned) documents.
    pub fn live_docs(&self) -> usize {
        self.corpus.num_docs() - self.deleted.len()
    }

    /// Number of tombstoned documents.
    pub fn tombstones(&self) -> usize {
        self.deleted.len()
    }

    /// Compaction merges performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// True iff `doc` exists and is not tombstoned.
    #[inline]
    pub fn is_live(&self, doc: DocId) -> bool {
        (doc as usize) < self.corpus.num_docs() && !self.deleted.contains(doc)
    }

    /// Appends `docs` as one new immutable segment (built over exactly the
    /// new id range — O(batch) index work) and returns the assigned id
    /// range. An empty batch is a no-op.
    ///
    /// Copy-on-write cost: when clones of this index are alive (the
    /// serving engine's snapshots), an add batch deep-copies at most the
    /// *tail chunk* of the document store and of the weight table
    /// (≤ [`crate::chunked::CHUNK`] entries each) — statistics, sealed
    /// chunks, and all segments stay `Arc`-shared, so the batch cost is
    /// O(batch), independent of corpus size (DESIGN.md §14; this closes
    /// the old §9 O(corpus) caveat). Deletes and compactions never touch
    /// the document list.
    ///
    /// # Panics
    /// Panics if a document references a term outside the frozen
    /// vocabulary.
    pub fn add_docs(&mut self, docs: Vec<Document>) -> Range<DocId> {
        if docs.is_empty() {
            let n = self.corpus.num_docs() as DocId;
            return n..n;
        }
        let id = self.alloc_segment_id();
        let corpus = Arc::make_mut(&mut self.corpus);
        let range = corpus.append_frozen(docs);
        let corpus: &Corpus = corpus;
        for d in range.clone() {
            self.weights
                .push(total_weight(corpus.idf_table(), corpus.doc(d)));
        }
        let segment = Segment::new(id, InvertedIndex::build_range(corpus, range.clone()));
        self.segments.push(Arc::new(segment));
        range
    }

    /// Hands out the next lineage-unique segment id.
    fn alloc_segment_id(&mut self) -> u64 {
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        id
    }

    /// Tokenizes `text` against the frozen vocabulary (stop words and
    /// out-of-vocabulary terms are dropped — the epoch cannot grow) and
    /// adds it as a single-document segment. Returns the new doc id.
    pub fn add_text(&mut self, title: &str, text: &str) -> DocId {
        let tokens: Vec<TermId> = tokenize(text)
            .into_iter()
            .filter(|t| !is_stopword(t))
            .filter_map(|t| self.corpus.term_id(&t))
            .collect();
        self.add_docs(vec![Document::from_tokens(title.to_owned(), tokens)])
            .start
    }

    /// Tombstones the given documents. Segments are untouched; reads
    /// filter the marks out. Returns how many documents were newly
    /// deleted (already-deleted ids are idempotent no-ops).
    ///
    /// # Panics
    /// Panics on a doc id that was never allocated (a caller bug, not a
    /// query-admission error).
    pub fn delete_docs(&mut self, docs: &[DocId]) -> usize {
        let n = self.corpus.num_docs() as DocId;
        let mut fresh = 0;
        for &doc in docs {
            assert!(
                doc < n,
                "delete of unallocated doc id {doc} (corpus has {n})"
            );
            fresh += self.deleted.insert(doc) as usize;
        }
        fresh
    }

    /// Size-tiered compaction: finds the smallest tier
    /// (`⌊log2(doc_count)⌋`) holding at least two segments and merges all
    /// of that tier's segments into one, **purging tombstoned postings**.
    /// The merge concatenates and re-sorts the stored posting lists under
    /// the shared `(partial desc, doc asc)` order — partials keep their
    /// exact bits, so rebuild equivalence is preserved by construction.
    ///
    /// When no tier holds two segments, a heavily-tombstoned *lone*
    /// segment (≥ 1/4 of its documents deleted) is rewritten in place
    /// instead — otherwise a single-segment layout could never reclaim
    /// its deletions, and queries would filter-drop the dead postings on
    /// every read forever.
    ///
    /// Returns the number of segments compacted (≥ 2 for a tier merge, 1
    /// for a lone rewrite, 0 = nothing to do). Call repeatedly to
    /// cascade tiers; the call sequence always terminates at 0.
    pub fn compact(&mut self) -> usize {
        let mut by_tier: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
        for (i, segment) in self.segments.iter().enumerate() {
            by_tier.entry(segment.tier()).or_default().push(i);
        }
        if let Some(group) = by_tier.into_values().find(|v| v.len() >= 2) {
            let id = self.alloc_segment_id();
            let merged = self.merge_segments(id, &group);
            self.segments[group[0]] = Arc::new(merged);
            for &i in group.iter().skip(1).rev() {
                self.segments.remove(i);
            }
            self.compactions += 1;
            return group.len();
        }
        let rewrite = (0..self.segments.len()).find(|&i| {
            let doc_count = self.segments[i].doc_count;
            doc_count > 0 && self.dead_docs_in(i) * 4 >= doc_count
        });
        let Some(i) = rewrite else {
            return 0;
        };
        let id = self.alloc_segment_id();
        let rewritten = self.merge_segments(id, &[i]);
        self.segments[i] = Arc::new(rewritten);
        self.compactions += 1;
        1
    }

    /// Distinct tombstoned documents still materialized in segment `i`
    /// (0 after that segment has been compacted).
    fn dead_docs_in(&self, i: usize) -> usize {
        let index = &self.segments[i].index;
        let mut dead: Vec<DocId> = (0..index.num_terms() as TermId)
            .flat_map(|t| index.postings(t).iter().map(|p| p.doc))
            .filter(|&d| self.deleted.contains(d))
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead.len()
    }

    /// Merges the posting lists of `self.segments[indices]` into one
    /// segment (with the given fresh id), dropping tombstoned docs.
    fn merge_segments(&self, id: u64, indices: &[usize]) -> Segment {
        let num_terms = self.corpus.num_terms();
        let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(num_terms);
        for t in 0..num_terms as TermId {
            let mut merged: Vec<Posting> = indices
                .iter()
                .flat_map(|&i| self.segments[i].index.postings(t))
                .filter(|p| !self.deleted.contains(p.doc))
                .copied()
                .collect();
            merged.sort_unstable_by(InvertedIndex::posting_order);
            lists.push(merged);
        }
        Segment::new(id, InvertedIndex::from_sorted_lists(lists))
    }

    /// One incremental posting-list scan per segment for a single keyword
    /// (tombstones **not** applied — pair with a filtered merge).
    pub fn scan_sources(&self, term: TermId) -> Vec<ScanSource<'_>> {
        self.segments
            .iter()
            .map(|s| ScanSource::new(&s.index, term))
            .collect()
    }

    /// One bounding threshold-algorithm source per segment for a
    /// multi-keyword query (tombstones **not** applied — pair with a
    /// filtered merge).
    pub fn ta_sources(&self, query: &KeywordQuery) -> Vec<TaSource<'_>> {
        self.segments
            .iter()
            .map(|s| TaSource::new(&self.corpus, &s.index, &query.terms))
            .collect()
    }

    /// Admission check: every term must be inside the frozen vocabulary.
    pub fn validate_terms(&self, terms: &[TermId]) -> Result<(), SearchError> {
        validate_terms(terms, &self.segments[0].index)
    }

    /// Single-keyword diversified search over the live documents:
    /// per-segment scans, k-way merged with the tombstone filter. The
    /// whole framework run — hits, total score, and every metric — is
    /// byte-identical to [`crate::search::DiversifiedSearcher::search_scan`]
    /// over [`SegmentedIndex::rebuilt_index`] (property-tested).
    pub fn search_scan(
        &self,
        term: TermId,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        self.validate_terms(&[term])?;
        let deleted = &self.deleted;
        let merged = MergedSource::incremental_filtered(self.scan_sources(term), |d: &DocId| {
            !deleted.contains(*d)
        });
        search_with_source(&self.corpus, &self.weights, merged, options)
    }

    /// Multi-keyword diversified search over the live documents:
    /// per-segment threshold algorithms, k-way merged (bounding) with the
    /// tombstone filter. Exact over the live set — same optimum as a
    /// from-scratch rebuild, reached down a (legitimately) different pull
    /// sequence, exactly as DESIGN.md §8 documents for shards.
    pub fn search_ta(
        &self,
        query: &KeywordQuery,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        self.validate_terms(&query.terms)?;
        let deleted = &self.deleted;
        let merged = MergedSource::bounding_filtered(self.ta_sources(query), |d: &DocId| {
            !deleted.contains(*d)
        });
        search_with_source(&self.corpus, &self.weights, merged, options)
    }

    /// [`SegmentedIndex::search_scan`] with the per-segment pulls pumped
    /// concurrently on `pool` (one prefetching producer per segment — see
    /// [`divtopk_core::prefetch`]). **Byte-identical** to the sequential
    /// path: the prefetch facade replays each scan's emission order *and*
    /// bound trajectory exactly, so the merge, the framework run, the
    /// metrics, and the early-stop point are all bit-for-bit those of
    /// [`SegmentedIndex::search_scan`] (`tests/parallel_merge.rs`).
    pub fn search_scan_pooled(
        &self,
        term: TermId,
        options: &SearchOptions,
        pool: &WorkerPool,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        self.validate_terms(&[term])?;
        let deleted = &self.deleted;
        pool.scope(|scope| {
            let prefetched: Vec<_> = self
                .scan_sources(term)
                .into_iter()
                .map(|s| PrefetchedSource::spawn(scope, s, DEFAULT_PREFETCH_DEPTH))
                .collect();
            let merged =
                MergedSource::incremental_filtered(prefetched, |d: &DocId| !deleted.contains(*d));
            search_with_source(&self.corpus, &self.weights, merged, options)
        })
    }

    /// [`SegmentedIndex::search_ta`] with the per-segment threshold
    /// algorithms pumped concurrently on `pool`. Byte-identical to the
    /// sequential path for the same reason as
    /// [`SegmentedIndex::search_scan_pooled`] — the facades replay each
    /// TA's emissions and bounds in lockstep, so the bounding merge sees
    /// the exact sequential observation sequence.
    pub fn search_ta_pooled(
        &self,
        query: &KeywordQuery,
        options: &SearchOptions,
        pool: &WorkerPool,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        self.validate_terms(&query.terms)?;
        let deleted = &self.deleted;
        pool.scope(|scope| {
            let prefetched: Vec<_> = self
                .ta_sources(query)
                .into_iter()
                .map(|s| PrefetchedSource::spawn(scope, s, DEFAULT_PREFETCH_DEPTH))
                .collect();
            let merged =
                MergedSource::bounding_filtered(prefetched, |d: &DocId| !deleted.contains(*d));
            search_with_source(&self.corpus, &self.weights, merged, options)
        })
    }

    /// The rebuild oracle: a from-scratch [`InvertedIndex`] over exactly
    /// the surviving documents, under the same frozen statistics. The
    /// segmented read path is byte-equivalent to serving from this index —
    /// `tests/segments.rs` and the `live_update` perfbase suite assert it.
    pub fn rebuilt_index(&self) -> InvertedIndex {
        InvertedIndex::build_where(&self.corpus, |d| !self.deleted.contains(d))
    }

    /// Verifies the core invariant directly on the data: the tombstone-
    /// filtered merge of all segment posting lists must equal the rebuilt
    /// index's lists, doc for doc and bit for bit — and the incremental
    /// weight table must match a from-scratch [`doc_weights`]. Returns a
    /// description of the first discrepancy, if any.
    pub fn verify_rebuild_equivalence(&self) -> Result<(), String> {
        let rebuilt = self.rebuilt_index();
        let all: Vec<usize> = (0..self.segments.len()).collect();
        let merged = self.merge_segments(self.next_segment_id, &all);
        for t in 0..self.corpus.num_terms() as TermId {
            let a = merged.index.postings(t);
            let b = rebuilt.postings(t);
            if a.len() != b.len() {
                return Err(format!(
                    "term {t}: merged view has {} postings, rebuild has {}",
                    a.len(),
                    b.len()
                ));
            }
            for (x, y) in a.iter().zip(b) {
                if x.doc != y.doc || x.partial.to_bits() != y.partial.to_bits() {
                    return Err(format!(
                        "term {t}: merged ({}, {}) vs rebuilt ({}, {})",
                        x.doc, x.partial, y.doc, y.partial
                    ));
                }
            }
        }
        let fresh = doc_weights(&self.corpus);
        if fresh.len() != self.weights.len()
            || fresh
                .iter()
                .zip(self.weights.iter())
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err("incremental weight table diverged from doc_weights".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::DiversifiedSearcher;
    use crate::synth::{SynthConfig, generate};

    fn base(n: usize) -> Corpus {
        generate(&SynthConfig {
            num_docs: n,
            ..SynthConfig::tiny()
        })
    }

    fn busy_term(c: &Corpus) -> TermId {
        (0..c.num_terms() as TermId)
            .max_by_key(|&t| c.doc_freq(t))
            .unwrap()
    }

    #[test]
    fn segmented_index_is_send_sync_and_cheap_to_clone() {
        fn assert_both<T: Send + Sync + Clone>() {}
        assert_both::<SegmentedIndex>();
    }

    #[test]
    fn build_partitioned_covers_every_posting_exactly_once() {
        let corpus = base(150);
        let full = InvertedIndex::build(&corpus);
        for parts in [1usize, 3, 4] {
            let seg = SegmentedIndex::build_partitioned(corpus.clone(), parts);
            assert_eq!(seg.num_segments(), parts);
            for t in 0..corpus.num_terms() as TermId {
                let total: usize = seg
                    .segments()
                    .iter()
                    .map(|s| s.index().postings(t).len())
                    .sum();
                assert_eq!(total, full.postings(t).len(), "term {t} parts {parts}");
            }
            seg.verify_rebuild_equivalence().unwrap();
        }
    }

    #[test]
    fn add_docs_assigns_fresh_ids_and_new_segment() {
        let corpus = base(60);
        let donor = generate(&SynthConfig {
            num_docs: 80,
            ..SynthConfig::tiny()
        });
        let mut seg = SegmentedIndex::build(corpus);
        let batch: Vec<Document> = (60..70u32).map(|d| donor.doc(d).clone()).collect();
        let range = seg.add_docs(batch);
        assert_eq!(range, 60..70);
        assert_eq!(seg.num_segments(), 2);
        assert_eq!(seg.num_docs(), 70);
        assert_eq!(seg.live_docs(), 70);
        assert!(seg.is_live(65));
        seg.verify_rebuild_equivalence().unwrap();
        // Empty batch is a no-op.
        let empty = seg.add_docs(Vec::new());
        assert_eq!(empty, 70..70);
        assert_eq!(seg.num_segments(), 2);
    }

    #[test]
    fn delete_is_idempotent_and_counted() {
        let mut seg = SegmentedIndex::build(base(40));
        assert_eq!(seg.delete_docs(&[3, 7, 3]), 2);
        assert_eq!(seg.delete_docs(&[7]), 0);
        assert_eq!(seg.tombstones(), 2);
        assert_eq!(seg.live_docs(), 38);
        assert!(!seg.is_live(3));
        assert!(seg.is_live(4));
        seg.verify_rebuild_equivalence().unwrap();
    }

    #[test]
    #[should_panic(expected = "unallocated doc id")]
    fn delete_of_unallocated_id_panics() {
        let mut seg = SegmentedIndex::build(base(10));
        seg.delete_docs(&[10]);
    }

    #[test]
    fn compaction_merges_small_tiers_and_purges_tombstones() {
        let corpus = base(100);
        let donor = generate(&SynthConfig {
            num_docs: 140,
            ..SynthConfig::tiny()
        });
        let mut seg = SegmentedIndex::build(corpus);
        // Three small single-digit segments land in low tiers.
        for start in [100u32, 104, 108] {
            let batch: Vec<Document> = (start..start + 4).map(|d| donor.doc(d).clone()).collect();
            seg.add_docs(batch);
        }
        assert_eq!(seg.num_segments(), 4);
        seg.delete_docs(&[101, 109]);
        let merged = seg.compact();
        assert_eq!(merged, 3, "the three tier-2 add segments merge");
        assert_eq!(seg.num_segments(), 2);
        assert_eq!(seg.compactions(), 1);
        // Tombstoned postings were purged from the merged segment.
        for s in seg.segments() {
            for t in 0..seg.corpus().num_terms() as TermId {
                for p in s.index().postings(t) {
                    if s.doc_count() < 50 {
                        assert!(
                            p.doc != 101 && p.doc != 109,
                            "tombstone survived compaction"
                        );
                    }
                }
            }
        }
        seg.verify_rebuild_equivalence().unwrap();
        // Nothing left to merge at distinct tiers.
        assert_eq!(seg.compact(), 0);
    }

    #[test]
    fn lone_segment_with_heavy_tombstoning_is_rewritten_in_place() {
        let mut seg = SegmentedIndex::build(base(60));
        // Default layout: one base segment, no tier partner to merge with.
        assert_eq!(seg.num_segments(), 1);
        let victims: Vec<DocId> = (0..30u32).collect();
        seg.delete_docs(&victims);
        assert_eq!(seg.compact(), 1, "a half-dead lone segment must rewrite");
        assert_eq!(seg.num_segments(), 1);
        assert_eq!(seg.compactions(), 1);
        for t in 0..seg.corpus().num_terms() as TermId {
            for p in seg.segments()[0].index().postings(t) {
                assert!(p.doc >= 30, "tombstoned posting survived the rewrite");
            }
        }
        seg.verify_rebuild_equivalence().unwrap();
        // Nothing dead remains → the cascade terminates.
        assert_eq!(seg.compact(), 0);
        // A lightly-tombstoned lone segment is left alone (< 1/4 dead).
        seg.delete_docs(&[35]);
        assert_eq!(seg.compact(), 0);
    }

    #[test]
    fn snapshot_clones_are_isolated_from_later_mutations() {
        let mut seg = SegmentedIndex::build(base(80));
        let term = busy_term(seg.corpus());
        let options = SearchOptions::new(3).with_tau(0.5);
        let snapshot = seg.clone();
        let before = snapshot.search_scan(term, &options).unwrap();
        // Mutate the original: delete the current top hit.
        let top = before.hits[0].doc;
        seg.delete_docs(&[top]);
        let after = seg.search_scan(term, &options).unwrap();
        assert!(after.hits.iter().all(|h| h.doc != top));
        // The pinned snapshot still serves the pre-mutation answer.
        assert_eq!(snapshot.search_scan(term, &options).unwrap(), before);
    }

    #[test]
    fn search_scan_matches_rebuilt_searcher_bit_for_bit() {
        let mut seg = SegmentedIndex::build(base(120));
        let donor = generate(&SynthConfig {
            num_docs: 160,
            ..SynthConfig::tiny()
        });
        seg.add_docs((120..150u32).map(|d| donor.doc(d).clone()).collect());
        let term = busy_term(seg.corpus());
        seg.delete_docs(&[0, 5, 121]);
        let rebuilt = seg.rebuilt_index();
        let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
        for k in [1usize, 4, 8] {
            let options = SearchOptions::new(k).with_tau(0.4);
            let want = searcher.search_scan(term, &options).unwrap();
            let got = seg.search_scan(term, &options).unwrap();
            assert_eq!(want, got, "k {k}");
        }
    }

    #[test]
    fn search_ta_is_exact_over_the_live_set() {
        let mut seg = SegmentedIndex::build(base(120));
        let c = seg.corpus().clone();
        let mut terms: Vec<TermId> = (0..c.num_terms() as TermId)
            .filter(|&t| c.doc_freq(t) >= 6)
            .collect();
        terms.sort_by_key(|&t| std::cmp::Reverse(c.doc_freq(t)));
        terms.truncate(2);
        let query = KeywordQuery { terms };
        seg.delete_docs(&[1, 2, 3]);
        let rebuilt = seg.rebuilt_index();
        let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
        let options = SearchOptions::new(5).with_tau(0.4);
        let want = searcher.search_ta(&query, &options).unwrap();
        let got = seg.search_ta(&query, &options).unwrap();
        assert!(
            got.total_score.approx_eq(want.total_score, 1e-9),
            "{} vs {}",
            got.total_score,
            want.total_score
        );
        for h in &got.hits {
            assert!(seg.is_live(h.doc), "tombstoned doc {} in hits", h.doc);
        }
    }

    #[test]
    fn add_text_respects_the_frozen_vocabulary() {
        let mut b = Corpus::builder();
        b.add_text("d0", "solar panels efficiency");
        b.add_text("d1", "wind turbines offshore");
        for i in 0..6 {
            b.add_text(&format!("f{i}"), "unrelated filler words");
        }
        let mut seg = SegmentedIndex::build(b.build());
        let id = seg.add_text("new", "solar storage neologism");
        // "storage"/"neologism" are out of the frozen vocabulary → dropped.
        let solar = seg.corpus().term_id("solar").unwrap();
        assert_eq!(seg.corpus().doc(id).tf(solar), 1);
        assert_eq!(seg.corpus().doc(id).len, 1);
        seg.verify_rebuild_equivalence().unwrap();
    }

    #[test]
    fn unknown_terms_are_typed_errors() {
        let seg = SegmentedIndex::build(base(30));
        let bogus = seg.corpus().num_terms() as TermId;
        assert_eq!(
            seg.search_scan(bogus, &SearchOptions::new(3)).unwrap_err(),
            SearchError::UnknownTerm { term: bogus }
        );
    }
}
