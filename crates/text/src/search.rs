//! End-to-end diversified document search: corpus + index + framework.
//!
//! This is the layer the paper's experiments exercise: a keyword query goes
//! through either the threshold algorithm (multi-keyword, bounding) or a
//! posting-list scan (single keyword, incremental); the diversified-search
//! engine pulls results, builds the diversity graph with weighted-Jaccard
//! similarity at threshold `τ`, and stops as early as Lemmas 1/3 allow.

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};
use crate::index::InvertedIndex;
use crate::jaccard::{similar_above, total_weight, weighted_jaccard};
use crate::mode::DiversifyMode;
use crate::query::KeywordQuery;
use crate::scan::ScanSource;
use crate::ta::TaSource;
use divtopk_core::diversify::{
    DiscDiversifier, Diversifier, DiversifierMetrics, DiversifyOutcome, ExactDiversifier,
    KnnDiversifier, MmrDiversifier, NoneDiversifier, SimilarityOracle, WindowDiversifier,
};
use divtopk_core::{ExactAlgorithm, FrameworkMetrics, Score, SearchError, SearchLimits};

/// A diversified hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The document.
    pub doc: DocId,
    /// Its Eq. 3 score for the query.
    pub score: Score,
}

/// Result of a diversified search.
///
/// `Clone + PartialEq` on purpose: the serving engine caches outputs and
/// its tests assert cache hits are bit-identical to the original run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutput {
    /// Top-k hits in the mode's ranking order. For the `Exact` modes no
    /// two hits exceed the similarity threshold pairwise and the total
    /// score is maximal (best first); cheap rerank modes emit their own
    /// deterministic ranking order (greedy selection order for MMR/KNN,
    /// rotated order for Window).
    pub hits: Vec<Hit>,
    /// Total score.
    pub total_score: Score,
    /// Framework counters (results generated, inner searches, early stop).
    pub metrics: FrameworkMetrics,
    /// The selected diversifier's own counters (pool size, similarity
    /// evaluations, rotations).
    pub diversifier: DiversifierMetrics,
}

/// A searcher bundling a corpus and its inverted index.
pub struct DiversifiedSearcher<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    /// Per-document total IDF weight — powers the O(1) similarity
    /// prefilter ([`similar_above`]) in the `O(|S|²)` graph construction.
    doc_weights: Vec<f64>,
}

/// Options for one search call.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Number of diversified results (`k`).
    pub k: usize,
    /// Similarity threshold `τ` (two docs are similar iff Jaccard > τ).
    pub tau: f64,
    /// Which diversification strategy runs — exact, a cheap rerank mode,
    /// or diversity off. See [`DiversifyMode`].
    pub mode: DiversifyMode,
    /// Budgets for each inner search (`INF` emulation when exceeded).
    pub limits: SearchLimits,
    /// Framework bound-decay throttle (0.0 = the paper's per-result
    /// checking; see `DivSearchConfig::min_bound_decay`).
    pub bound_decay: f64,
}

impl SearchOptions {
    /// Defaults matching the paper's defaults: τ = 0.6, exact div-cut,
    /// no budget.
    pub fn new(k: usize) -> SearchOptions {
        SearchOptions {
            k,
            tau: 0.6,
            mode: DiversifyMode::default(),
            limits: SearchLimits::unlimited(),
            bound_decay: 0.0,
        }
    }

    /// Selects the diversification mode.
    pub fn with_mode(mut self, mode: DiversifyMode) -> SearchOptions {
        self.mode = mode;
        self
    }

    /// Enables or disables diversification.
    ///
    /// Deprecated shim over [`DiversifyMode`]: `false` maps to
    /// [`DiversifyMode::None`]; `true` restores the default
    /// `Exact(Cut)` only when the current mode is `None` (any other
    /// mode already diversifies and is left alone). A previous
    /// `with_algorithm` choice is *not* resurrected by an off/on
    /// round-trip — callers doing that dance should say
    /// `with_mode(DiversifyMode::Exact(...))` directly.
    #[deprecated(
        since = "0.10.0",
        note = "use with_mode(DiversifyMode::None / ::Exact(..))"
    )]
    pub fn with_diversify(mut self, diversify: bool) -> SearchOptions {
        if !diversify {
            self.mode = DiversifyMode::None;
        } else if self.mode == DiversifyMode::None {
            self.mode = DiversifyMode::default();
        }
        self
    }

    /// Overrides the framework bound-decay throttle.
    pub fn with_bound_decay(mut self, decay: f64) -> SearchOptions {
        self.bound_decay = decay;
        self
    }

    /// Overrides τ.
    pub fn with_tau(mut self, tau: f64) -> SearchOptions {
        self.tau = tau;
        self
    }

    /// Overrides the inner exact algorithm.
    ///
    /// Deprecated shim over [`DiversifyMode`]: equivalent to
    /// `with_mode(DiversifyMode::Exact(algorithm))`.
    #[deprecated(since = "0.10.0", note = "use with_mode(DiversifyMode::Exact(..))")]
    pub fn with_algorithm(mut self, algorithm: ExactAlgorithm) -> SearchOptions {
        self.mode = DiversifyMode::Exact(algorithm);
        self
    }

    /// Overrides the inner-search budgets.
    pub fn with_limits(mut self, limits: SearchLimits) -> SearchOptions {
        self.limits = limits;
        self
    }

    /// Admission validation, applied by [`DiversifiedSearcher`] and the
    /// serving engine before any work happens:
    ///
    /// * `k == 0` is rejected (`SearchError::InvalidK`) instead of falling
    ///   through to the inner search as a silent no-op;
    /// * `τ` must be a number in `[0, 1]` (`SearchError::InvalidTau`) —
    ///   a NaN τ makes every `sim > τ` comparison false, silently turning
    ///   diversified search into plain top-k;
    /// * every mode parameter must be in range
    ///   (`SearchError::InvalidMode`; see [`DiversifyMode::validate`]).
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.k == 0 {
            return Err(SearchError::InvalidK { k: 0 });
        }
        if !self.tau.is_finite() || !(0.0..=1.0).contains(&self.tau) {
            return Err(SearchError::InvalidTau { tau: self.tau });
        }
        self.mode.validate()
    }
}

/// Per-document total IDF weights (`W(d)` of the [`similar_above`]
/// prefilter), precomputed once per corpus. Exposed so long-lived owners
/// of a corpus — the serving engine — can share one table across queries.
pub fn doc_weights(corpus: &Corpus) -> Vec<f64> {
    let idf = corpus.idf_table();
    corpus.docs().map(|d| total_weight(idf, d)).collect()
}

/// A doc-id-indexed table of per-document total IDF weights — the read
/// interface [`search_with_source`] needs, abstracted so callers can
/// hand in either a dense slice ([`doc_weights`]) or the segmented
/// engine's chunked, COW-shared table
/// ([`ChunkedVec<f64>`](crate::chunked::ChunkedVec)).
pub trait WeightTable {
    /// `W(d)` — the total IDF weight of document `d`. Implementations
    /// may panic on out-of-range ids; callers index only documents of
    /// the corpus the table was built from.
    fn weight(&self, d: DocId) -> f64;
}

impl WeightTable for [f64] {
    #[inline]
    fn weight(&self, d: DocId) -> f64 {
        self[d as usize]
    }
}

impl WeightTable for Vec<f64> {
    #[inline]
    fn weight(&self, d: DocId) -> f64 {
        self[d as usize]
    }
}

impl WeightTable for crate::chunked::ChunkedVec<f64> {
    #[inline]
    fn weight(&self, d: DocId) -> f64 {
        self[d as usize]
    }
}

/// Runs one diversified search over an arbitrary
/// [`ResultSource`](divtopk_core::ResultSource) of
/// documents from `corpus` — the shared execution path behind
/// [`DiversifiedSearcher`] and the sharded engine's merged sources.
/// `weights` must be the [`doc_weights`] table of the same corpus (in
/// any [`WeightTable`] representation). Validates `options` at
/// admission.
pub fn search_with_source<S, W>(
    corpus: &Corpus,
    weights: &W,
    source: S,
    options: &SearchOptions,
) -> Result<SearchOutput, SearchError>
where
    S: divtopk_core::ResultSource<Item = DocId>,
    W: WeightTable + ?Sized,
{
    options.validate()?;
    let tau = options.tau;
    // The thresholded view (`sim > τ` behind the O(1) weight prefilter)
    // drives the exact modes' diversity graph and the window leaf's
    // source clustering; the raw view feeds the modes that *weigh*
    // redundancy (MMR, KNN).
    let oracle = SimilarityOracle {
        above: move |a: &DocId, b: &DocId| {
            similar_above(
                corpus.idf_table(),
                corpus.doc(*a),
                weights.weight(*a),
                corpus.doc(*b),
                weights.weight(*b),
                tau,
            )
        },
        value: move |a: &DocId, b: &DocId| weighted_jaccard(corpus, corpus.doc(*a), corpus.doc(*b)),
    };
    let limits = options.limits.clone();
    let bound_decay = options.bound_decay;
    let k = options.k;
    let out: DiversifyOutcome<DocId> = match &options.mode {
        DiversifyMode::Exact(algorithm) => ExactDiversifier {
            algorithm: algorithm.clone(),
            limits,
            bound_decay,
        }
        .run(source, oracle, k)?,
        DiversifyMode::None => NoneDiversifier {
            limits,
            bound_decay,
        }
        .run(source, oracle, k)?,
        DiversifyMode::Mmr(config) => MmrDiversifier {
            lambda: config.lambda,
            limits,
            bound_decay,
        }
        .run(source, oracle, k)?,
        DiversifyMode::Window(config) => WindowDiversifier {
            config: config.clone(),
            limits,
            bound_decay,
        }
        .run(source, oracle, k)?,
        DiversifyMode::Disc => DiscDiversifier {
            limits,
            bound_decay,
        }
        .run(source, oracle, k)?,
        DiversifyMode::Knn(config) => KnnDiversifier {
            neighbors: config.neighbors,
            limits,
            bound_decay,
        }
        .run(source, oracle, k)?,
    };
    let hits = out
        .selected
        .iter()
        .map(|r| Hit {
            doc: r.item,
            score: r.score,
        })
        .collect();
    Ok(SearchOutput {
        hits,
        total_score: out.total_score,
        metrics: out.framework,
        diversifier: out.diversifier,
    })
}

impl<'a> DiversifiedSearcher<'a> {
    /// Creates a searcher over a prebuilt corpus and index.
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex) -> DiversifiedSearcher<'a> {
        DiversifiedSearcher {
            corpus,
            index,
            doc_weights: doc_weights(corpus),
        }
    }

    /// Multi-keyword diversified search via the threshold algorithm
    /// (bounding framework — the paper's enwiki configuration).
    /// Rejects invalid options and out-of-vocabulary terms at admission.
    pub fn search_ta(
        &self,
        query: &KeywordQuery,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        validate_terms(&query.terms, self.index)?;
        let source = TaSource::new(self.corpus, self.index, &query.terms);
        search_with_source(self.corpus, &self.doc_weights, source, options)
    }

    /// Single-keyword diversified search via a posting-list scan
    /// (incremental framework — the paper's reuters configuration).
    /// Rejects invalid options and out-of-vocabulary terms at admission.
    pub fn search_scan(
        &self,
        term: TermId,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        validate_terms(&[term], self.index)?;
        let source = ScanSource::new(self.index, term);
        search_with_source(self.corpus, &self.doc_weights, source, options)
    }
}

/// Admission check shared with the serving engine: every query term must
/// lie inside the index vocabulary, so malformed client input surfaces as
/// a typed [`SearchError::UnknownTerm`] instead of an out-of-bounds panic
/// in a posting-list lookup.
pub fn validate_terms(terms: &[TermId], index: &InvertedIndex) -> Result<(), SearchError> {
    match terms.iter().find(|&&t| t as usize >= index.num_terms()) {
        Some(&term) => Err(SearchError::UnknownTerm { term }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::weighted_jaccard;
    use crate::query::query_for_band;
    use crate::synth::{SynthConfig, generate};
    use divtopk_core::DiversityGraph;
    use divtopk_core::exhaustive::exhaustive;

    fn setup() -> (Corpus, InvertedIndex) {
        let corpus = generate(&SynthConfig::tiny());
        let index = InvertedIndex::build(&corpus);
        (corpus, index)
    }

    /// Offline oracle: materialize *all* matching docs, build the full
    /// diversity graph, solve exhaustively.
    fn offline_optimum(
        corpus: &Corpus,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        tau: f64,
    ) -> Score {
        use std::collections::HashSet;
        let mut docs: HashSet<DocId> = HashSet::new();
        for &t in terms {
            for p in index.postings(t) {
                docs.insert(p.doc);
            }
        }
        let docs: Vec<DocId> = docs.into_iter().collect();
        let items: Vec<(DocId, Score)> = docs
            .iter()
            .map(|&d| (d, crate::tfidf::score(corpus, terms, d)))
            .collect();
        let (graph, _) = DiversityGraph::from_items(
            &items,
            |&(_, s)| s,
            |&(a, _), &(b, _)| weighted_jaccard(corpus, corpus.doc(a), corpus.doc(b)) > tau,
        );
        exhaustive(&graph, k).best().score()
    }

    #[test]
    fn scan_search_matches_offline_oracle() {
        let (corpus, index) = setup();
        // Pick a term with a moderately sized posting list so the oracle
        // stays tractable.
        let term = (0..corpus.num_terms() as TermId)
            .find(|&t| (8..=18).contains(&index.postings(t).len()))
            .expect("tiny corpus has mid-frequency terms");
        let options = SearchOptions::new(4).with_tau(0.3);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let out = searcher.search_scan(term, &options).unwrap();
        let want = offline_optimum(&corpus, &index, &[term], 4, 0.3);
        assert!(
            out.total_score.approx_eq(want, 1e-9),
            "got {} want {want}",
            out.total_score
        );
        // Hits are pairwise dissimilar.
        for i in 0..out.hits.len() {
            for j in (i + 1)..out.hits.len() {
                let s = weighted_jaccard(
                    &corpus,
                    corpus.doc(out.hits[i].doc),
                    corpus.doc(out.hits[j].doc),
                );
                assert!(s <= 0.3, "hits {i},{j} too similar ({s})");
            }
        }
    }

    #[test]
    fn ta_search_matches_offline_oracle() {
        let (corpus, index) = setup();
        let query = query_for_band(&corpus, 2, 2, 5).expect("band 2 populated");
        let options = SearchOptions::new(3).with_tau(0.4);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let out = searcher.search_ta(&query, &options).unwrap();
        let want = offline_optimum(&corpus, &index, &query.terms, 3, 0.4);
        assert!(
            out.total_score.approx_eq(want, 1e-9),
            "got {} want {want}",
            out.total_score
        );
    }

    #[test]
    fn all_algorithms_agree_end_to_end() {
        let (corpus, index) = setup();
        let query = query_for_band(&corpus, 1, 2, 11).expect("band 1 populated");
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let mut scores = Vec::new();
        for algorithm in [
            ExactAlgorithm::AStar,
            ExactAlgorithm::Dp,
            ExactAlgorithm::Cut,
        ] {
            let options = SearchOptions::new(5)
                .with_tau(0.5)
                .with_mode(DiversifyMode::Exact(algorithm));
            scores.push(searcher.search_ta(&query, &options).unwrap().total_score);
        }
        assert!(scores[0].approx_eq(scores[1], 1e-9));
        assert!(scores[1].approx_eq(scores[2], 1e-9));
    }

    #[test]
    fn early_stop_happens_on_real_corpus() {
        let (corpus, index) = setup();
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let list_len = index.postings(term).len();
        assert!(list_len > 50, "need a popular term, got {list_len}");
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let out = searcher
            .search_scan(term, &SearchOptions::new(3).with_tau(0.98))
            .unwrap();
        // τ≈1 → everything dissimilar → top-3 by score, found after ~k pulls.
        assert!(
            (out.metrics.results_generated as usize) < list_len,
            "no early stop: pulled {} of {}",
            out.metrics.results_generated,
            list_len
        );
        assert!(out.metrics.early_stopped);
        assert_eq!(out.hits.len(), 3);
    }

    #[test]
    fn diversify_off_returns_plain_topk() {
        let (corpus, index) = setup();
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let off = searcher
            .search_scan(
                term,
                &SearchOptions::new(5)
                    .with_tau(0.3)
                    .with_mode(DiversifyMode::None),
            )
            .unwrap();
        assert_eq!(off.hits.len(), 5);
        // Hits are score-descending and their scores are exactly the top-5
        // relevance scores of the whole posting list.
        let mut all: Vec<f64> = index
            .postings(term)
            .iter()
            .map(|p| crate::tfidf::score(&corpus, &[term], p.doc).get())
            .collect();
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (hit, want) in off.hits.iter().zip(&all) {
            assert!(
                (hit.score.get() - want).abs() < 1e-9,
                "hit {} want {want}",
                hit.score
            );
        }
        // τ = 1.0 with diversification on is the same oracle (Jaccard can
        // never exceed 1), so the two paths must agree on total score.
        let tau_one = searcher
            .search_scan(term, &SearchOptions::new(5).with_tau(1.0))
            .unwrap();
        assert!(off.total_score.approx_eq(tau_one.total_score, 1e-9));
        // And it is deterministic run-to-run.
        let again = searcher
            .search_scan(
                term,
                &SearchOptions::new(5)
                    .with_tau(0.3)
                    .with_mode(DiversifyMode::None),
            )
            .unwrap();
        assert_eq!(off.hits, again.hits);
    }

    #[test]
    fn diversify_off_never_scores_below_diversified() {
        // The diversity-off total is an upper bound on the diversified
        // total for the same query (constraints only remove options).
        let (corpus, index) = setup();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let query = query_for_band(&corpus, 2, 2, 5).expect("band 2 populated");
        let on = searcher
            .search_ta(&query, &SearchOptions::new(4).with_tau(0.3))
            .unwrap();
        let off = searcher
            .search_ta(
                &query,
                &SearchOptions::new(4)
                    .with_tau(0.3)
                    .with_mode(DiversifyMode::None),
            )
            .unwrap();
        assert!(
            off.total_score.get() >= on.total_score.get() - 1e-9,
            "off {} < on {}",
            off.total_score,
            on.total_score
        );
    }

    #[test]
    fn admission_rejects_invalid_k_and_tau() {
        let (corpus, index) = setup();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let query = KeywordQuery { terms: vec![term] };

        // k == 0 must be rejected, not silently return empty.
        let k0 = SearchOptions::new(0);
        assert_eq!(
            searcher.search_scan(term, &k0).unwrap_err(),
            SearchError::InvalidK { k: 0 }
        );
        assert_eq!(
            searcher.search_ta(&query, &k0).unwrap_err(),
            SearchError::InvalidK { k: 0 }
        );

        // τ outside [0, 1] or NaN must be rejected with the typed error.
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let options = SearchOptions::new(3).with_tau(bad);
            match searcher.search_scan(term, &options).unwrap_err() {
                SearchError::InvalidTau { tau } => {
                    assert!(tau.is_nan() == bad.is_nan() && (bad.is_nan() || tau == bad));
                }
                other => panic!("expected InvalidTau, got {other:?}"),
            }
            assert!(matches!(
                searcher.search_ta(&query, &options).unwrap_err(),
                SearchError::InvalidTau { .. }
            ));
        }

        // Boundary values stay admissible (τ = 0 and τ = 1 are legal).
        assert!(SearchOptions::new(1).with_tau(0.0).validate().is_ok());
        assert!(SearchOptions::new(1).with_tau(1.0).validate().is_ok());

        // Out-of-vocabulary term ids are a typed error, not a panic.
        let bogus = corpus.num_terms() as TermId;
        let ok = SearchOptions::new(3);
        assert_eq!(
            searcher.search_scan(bogus, &ok).unwrap_err(),
            SearchError::UnknownTerm { term: bogus }
        );
        assert_eq!(
            searcher
                .search_ta(
                    &KeywordQuery {
                        terms: vec![term, bogus]
                    },
                    &ok
                )
                .unwrap_err(),
            SearchError::UnknownTerm { term: bogus }
        );
    }

    #[test]
    fn budget_exhaustion_surfaces_as_error() {
        let (corpus, index) = setup();
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let options = SearchOptions::new(10)
            .with_tau(0.2)
            .with_limits(SearchLimits {
                max_expansions: Some(1),
                ..SearchLimits::default()
            });
        assert!(searcher.search_scan(term, &options).is_err());
    }
}
