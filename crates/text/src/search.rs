//! End-to-end diversified document search: corpus + index + framework.
//!
//! This is the layer the paper's experiments exercise: a keyword query goes
//! through either the threshold algorithm (multi-keyword, bounding) or a
//! posting-list scan (single keyword, incremental); the diversified-search
//! engine pulls results, builds the diversity graph with weighted-Jaccard
//! similarity at threshold `τ`, and stops as early as Lemmas 1/3 allow.

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};
use crate::index::InvertedIndex;
use crate::jaccard::{similar_above, total_weight};
use crate::query::KeywordQuery;
use crate::scan::ScanSource;
use crate::ta::TaSource;
use divtopk_core::{
    DivSearchConfig, DivTopK, ExactAlgorithm, FrameworkMetrics, Score, SearchError, SearchLimits,
};

/// A diversified hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The document.
    pub doc: DocId,
    /// Its Eq. 3 score for the query.
    pub score: Score,
}

/// Result of a diversified search.
///
/// `Clone + PartialEq` on purpose: the serving engine caches outputs and
/// its tests assert cache hits are bit-identical to the original run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutput {
    /// Diversified top-k hits, best first; no two exceed the similarity
    /// threshold pairwise, and the total score is maximal.
    pub hits: Vec<Hit>,
    /// Total score.
    pub total_score: Score,
    /// Framework counters (results generated, inner searches, early stop).
    pub metrics: FrameworkMetrics,
}

/// A searcher bundling a corpus and its inverted index.
pub struct DiversifiedSearcher<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    /// Per-document total IDF weight — powers the O(1) similarity
    /// prefilter ([`similar_above`]) in the `O(|S|²)` graph construction.
    doc_weights: Vec<f64>,
}

/// Options for one search call.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Number of diversified results (`k`).
    pub k: usize,
    /// Similarity threshold `τ` (two docs are similar iff Jaccard > τ).
    pub tau: f64,
    /// Inner exact algorithm.
    pub algorithm: ExactAlgorithm,
    /// Budgets for each inner search (`INF` emulation when exceeded).
    pub limits: SearchLimits,
    /// Framework bound-decay throttle (0.0 = the paper's per-result
    /// checking; see `DivSearchConfig::min_bound_decay`).
    pub bound_decay: f64,
    /// When `false`, the similarity predicate is replaced by a constant
    /// `false`: the diversity graph is edgeless, so the framework returns
    /// the plain relevance top-k (score descending, doc id as tie-break)
    /// through the *same* source and early-stop machinery — the
    /// deterministic diversity-off oracle the quality harness compares
    /// against. Defaults to `true`.
    pub diversify: bool,
}

impl SearchOptions {
    /// Defaults matching the paper's defaults: τ = 0.6, div-cut, no budget.
    pub fn new(k: usize) -> SearchOptions {
        SearchOptions {
            k,
            tau: 0.6,
            algorithm: ExactAlgorithm::Cut,
            limits: SearchLimits::unlimited(),
            bound_decay: 0.0,
            diversify: true,
        }
    }

    /// Enables or disables diversification (see the `diversify` field).
    pub fn with_diversify(mut self, diversify: bool) -> SearchOptions {
        self.diversify = diversify;
        self
    }

    /// Overrides the framework bound-decay throttle.
    pub fn with_bound_decay(mut self, decay: f64) -> SearchOptions {
        self.bound_decay = decay;
        self
    }

    /// Overrides τ.
    pub fn with_tau(mut self, tau: f64) -> SearchOptions {
        self.tau = tau;
        self
    }

    /// Overrides the inner algorithm.
    pub fn with_algorithm(mut self, algorithm: ExactAlgorithm) -> SearchOptions {
        self.algorithm = algorithm;
        self
    }

    /// Overrides the inner-search budgets.
    pub fn with_limits(mut self, limits: SearchLimits) -> SearchOptions {
        self.limits = limits;
        self
    }

    /// Admission validation, applied by [`DiversifiedSearcher`] and the
    /// serving engine before any work happens:
    ///
    /// * `k == 0` is rejected (`SearchError::InvalidK`) instead of falling
    ///   through to the inner search as a silent no-op;
    /// * `τ` must be a number in `[0, 1]` (`SearchError::InvalidTau`) —
    ///   a NaN τ makes every `sim > τ` comparison false, silently turning
    ///   diversified search into plain top-k.
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.k == 0 {
            return Err(SearchError::InvalidK { k: 0 });
        }
        if !self.tau.is_finite() || !(0.0..=1.0).contains(&self.tau) {
            return Err(SearchError::InvalidTau { tau: self.tau });
        }
        Ok(())
    }
}

/// Per-document total IDF weights (`W(d)` of the [`similar_above`]
/// prefilter), precomputed once per corpus. Exposed so long-lived owners
/// of a corpus — the serving engine — can share one table across queries.
pub fn doc_weights(corpus: &Corpus) -> Vec<f64> {
    let idf = corpus.idf_table();
    corpus.docs().map(|d| total_weight(idf, d)).collect()
}

/// A doc-id-indexed table of per-document total IDF weights — the read
/// interface [`search_with_source`] needs, abstracted so callers can
/// hand in either a dense slice ([`doc_weights`]) or the segmented
/// engine's chunked, COW-shared table
/// ([`ChunkedVec<f64>`](crate::chunked::ChunkedVec)).
pub trait WeightTable {
    /// `W(d)` — the total IDF weight of document `d`. Implementations
    /// may panic on out-of-range ids; callers index only documents of
    /// the corpus the table was built from.
    fn weight(&self, d: DocId) -> f64;
}

impl WeightTable for [f64] {
    #[inline]
    fn weight(&self, d: DocId) -> f64 {
        self[d as usize]
    }
}

impl WeightTable for Vec<f64> {
    #[inline]
    fn weight(&self, d: DocId) -> f64 {
        self[d as usize]
    }
}

impl WeightTable for crate::chunked::ChunkedVec<f64> {
    #[inline]
    fn weight(&self, d: DocId) -> f64 {
        self[d as usize]
    }
}

/// Runs one diversified search over an arbitrary
/// [`ResultSource`](divtopk_core::ResultSource) of
/// documents from `corpus` — the shared execution path behind
/// [`DiversifiedSearcher`] and the sharded engine's merged sources.
/// `weights` must be the [`doc_weights`] table of the same corpus (in
/// any [`WeightTable`] representation). Validates `options` at
/// admission.
pub fn search_with_source<S, W>(
    corpus: &Corpus,
    weights: &W,
    source: S,
    options: &SearchOptions,
) -> Result<SearchOutput, SearchError>
where
    S: divtopk_core::ResultSource<Item = DocId>,
    W: WeightTable + ?Sized,
{
    options.validate()?;
    let tau = options.tau;
    let diversify = options.diversify;
    // With diversification off the predicate short-circuits to `false`:
    // an edgeless graph makes the diversified optimum the plain score-
    // descending top-k, while the Lemma 1/3 early stops stay sound.
    let similar = move |a: &DocId, b: &DocId| {
        diversify
            && similar_above(
                corpus.idf_table(),
                corpus.doc(*a),
                weights.weight(*a),
                corpus.doc(*b),
                weights.weight(*b),
                tau,
            )
    };
    let config = DivSearchConfig::new(options.k)
        .with_algorithm(options.algorithm.clone())
        .with_limits(options.limits.clone())
        .with_bound_decay(options.bound_decay);
    let out = DivTopK::new(source, similar, config).run()?;
    let hits = out
        .selected
        .iter()
        .map(|r| Hit {
            doc: r.item,
            score: r.score,
        })
        .collect();
    Ok(SearchOutput {
        hits,
        total_score: out.total_score,
        metrics: out.metrics,
    })
}

impl<'a> DiversifiedSearcher<'a> {
    /// Creates a searcher over a prebuilt corpus and index.
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex) -> DiversifiedSearcher<'a> {
        DiversifiedSearcher {
            corpus,
            index,
            doc_weights: doc_weights(corpus),
        }
    }

    /// Multi-keyword diversified search via the threshold algorithm
    /// (bounding framework — the paper's enwiki configuration).
    /// Rejects invalid options and out-of-vocabulary terms at admission.
    pub fn search_ta(
        &self,
        query: &KeywordQuery,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        validate_terms(&query.terms, self.index)?;
        let source = TaSource::new(self.corpus, self.index, &query.terms);
        search_with_source(self.corpus, &self.doc_weights, source, options)
    }

    /// Single-keyword diversified search via a posting-list scan
    /// (incremental framework — the paper's reuters configuration).
    /// Rejects invalid options and out-of-vocabulary terms at admission.
    pub fn search_scan(
        &self,
        term: TermId,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        options.validate()?;
        validate_terms(&[term], self.index)?;
        let source = ScanSource::new(self.index, term);
        search_with_source(self.corpus, &self.doc_weights, source, options)
    }
}

/// Admission check shared with the serving engine: every query term must
/// lie inside the index vocabulary, so malformed client input surfaces as
/// a typed [`SearchError::UnknownTerm`] instead of an out-of-bounds panic
/// in a posting-list lookup.
pub fn validate_terms(terms: &[TermId], index: &InvertedIndex) -> Result<(), SearchError> {
    match terms.iter().find(|&&t| t as usize >= index.num_terms()) {
        Some(&term) => Err(SearchError::UnknownTerm { term }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::weighted_jaccard;
    use crate::query::query_for_band;
    use crate::synth::{SynthConfig, generate};
    use divtopk_core::DiversityGraph;
    use divtopk_core::exhaustive::exhaustive;

    fn setup() -> (Corpus, InvertedIndex) {
        let corpus = generate(&SynthConfig::tiny());
        let index = InvertedIndex::build(&corpus);
        (corpus, index)
    }

    /// Offline oracle: materialize *all* matching docs, build the full
    /// diversity graph, solve exhaustively.
    fn offline_optimum(
        corpus: &Corpus,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        tau: f64,
    ) -> Score {
        use std::collections::HashSet;
        let mut docs: HashSet<DocId> = HashSet::new();
        for &t in terms {
            for p in index.postings(t) {
                docs.insert(p.doc);
            }
        }
        let docs: Vec<DocId> = docs.into_iter().collect();
        let items: Vec<(DocId, Score)> = docs
            .iter()
            .map(|&d| (d, crate::tfidf::score(corpus, terms, d)))
            .collect();
        let (graph, _) = DiversityGraph::from_items(
            &items,
            |&(_, s)| s,
            |&(a, _), &(b, _)| weighted_jaccard(corpus, corpus.doc(a), corpus.doc(b)) > tau,
        );
        exhaustive(&graph, k).best().score()
    }

    #[test]
    fn scan_search_matches_offline_oracle() {
        let (corpus, index) = setup();
        // Pick a term with a moderately sized posting list so the oracle
        // stays tractable.
        let term = (0..corpus.num_terms() as TermId)
            .find(|&t| (8..=18).contains(&index.postings(t).len()))
            .expect("tiny corpus has mid-frequency terms");
        let options = SearchOptions::new(4).with_tau(0.3);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let out = searcher.search_scan(term, &options).unwrap();
        let want = offline_optimum(&corpus, &index, &[term], 4, 0.3);
        assert!(
            out.total_score.approx_eq(want, 1e-9),
            "got {} want {want}",
            out.total_score
        );
        // Hits are pairwise dissimilar.
        for i in 0..out.hits.len() {
            for j in (i + 1)..out.hits.len() {
                let s = weighted_jaccard(
                    &corpus,
                    corpus.doc(out.hits[i].doc),
                    corpus.doc(out.hits[j].doc),
                );
                assert!(s <= 0.3, "hits {i},{j} too similar ({s})");
            }
        }
    }

    #[test]
    fn ta_search_matches_offline_oracle() {
        let (corpus, index) = setup();
        let query = query_for_band(&corpus, 2, 2, 5).expect("band 2 populated");
        let options = SearchOptions::new(3).with_tau(0.4);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let out = searcher.search_ta(&query, &options).unwrap();
        let want = offline_optimum(&corpus, &index, &query.terms, 3, 0.4);
        assert!(
            out.total_score.approx_eq(want, 1e-9),
            "got {} want {want}",
            out.total_score
        );
    }

    #[test]
    fn all_algorithms_agree_end_to_end() {
        let (corpus, index) = setup();
        let query = query_for_band(&corpus, 1, 2, 11).expect("band 1 populated");
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let mut scores = Vec::new();
        for algorithm in [
            ExactAlgorithm::AStar,
            ExactAlgorithm::Dp,
            ExactAlgorithm::Cut,
        ] {
            let options = SearchOptions::new(5)
                .with_tau(0.5)
                .with_algorithm(algorithm);
            scores.push(searcher.search_ta(&query, &options).unwrap().total_score);
        }
        assert!(scores[0].approx_eq(scores[1], 1e-9));
        assert!(scores[1].approx_eq(scores[2], 1e-9));
    }

    #[test]
    fn early_stop_happens_on_real_corpus() {
        let (corpus, index) = setup();
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let list_len = index.postings(term).len();
        assert!(list_len > 50, "need a popular term, got {list_len}");
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let out = searcher
            .search_scan(term, &SearchOptions::new(3).with_tau(0.98))
            .unwrap();
        // τ≈1 → everything dissimilar → top-3 by score, found after ~k pulls.
        assert!(
            (out.metrics.results_generated as usize) < list_len,
            "no early stop: pulled {} of {}",
            out.metrics.results_generated,
            list_len
        );
        assert!(out.metrics.early_stopped);
        assert_eq!(out.hits.len(), 3);
    }

    #[test]
    fn diversify_off_returns_plain_topk() {
        let (corpus, index) = setup();
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let off = searcher
            .search_scan(
                term,
                &SearchOptions::new(5).with_tau(0.3).with_diversify(false),
            )
            .unwrap();
        assert_eq!(off.hits.len(), 5);
        // Hits are score-descending and their scores are exactly the top-5
        // relevance scores of the whole posting list.
        let mut all: Vec<f64> = index
            .postings(term)
            .iter()
            .map(|p| crate::tfidf::score(&corpus, &[term], p.doc).get())
            .collect();
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (hit, want) in off.hits.iter().zip(&all) {
            assert!(
                (hit.score.get() - want).abs() < 1e-9,
                "hit {} want {want}",
                hit.score
            );
        }
        // τ = 1.0 with diversification on is the same oracle (Jaccard can
        // never exceed 1), so the two paths must agree on total score.
        let tau_one = searcher
            .search_scan(term, &SearchOptions::new(5).with_tau(1.0))
            .unwrap();
        assert!(off.total_score.approx_eq(tau_one.total_score, 1e-9));
        // And it is deterministic run-to-run.
        let again = searcher
            .search_scan(
                term,
                &SearchOptions::new(5).with_tau(0.3).with_diversify(false),
            )
            .unwrap();
        assert_eq!(off.hits, again.hits);
    }

    #[test]
    fn diversify_off_never_scores_below_diversified() {
        // The diversity-off total is an upper bound on the diversified
        // total for the same query (constraints only remove options).
        let (corpus, index) = setup();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let query = query_for_band(&corpus, 2, 2, 5).expect("band 2 populated");
        let on = searcher
            .search_ta(&query, &SearchOptions::new(4).with_tau(0.3))
            .unwrap();
        let off = searcher
            .search_ta(
                &query,
                &SearchOptions::new(4).with_tau(0.3).with_diversify(false),
            )
            .unwrap();
        assert!(
            off.total_score.get() >= on.total_score.get() - 1e-9,
            "off {} < on {}",
            off.total_score,
            on.total_score
        );
    }

    #[test]
    fn admission_rejects_invalid_k_and_tau() {
        let (corpus, index) = setup();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let query = KeywordQuery { terms: vec![term] };

        // k == 0 must be rejected, not silently return empty.
        let k0 = SearchOptions::new(0);
        assert_eq!(
            searcher.search_scan(term, &k0).unwrap_err(),
            SearchError::InvalidK { k: 0 }
        );
        assert_eq!(
            searcher.search_ta(&query, &k0).unwrap_err(),
            SearchError::InvalidK { k: 0 }
        );

        // τ outside [0, 1] or NaN must be rejected with the typed error.
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let options = SearchOptions::new(3).with_tau(bad);
            match searcher.search_scan(term, &options).unwrap_err() {
                SearchError::InvalidTau { tau } => {
                    assert!(tau.is_nan() == bad.is_nan() && (bad.is_nan() || tau == bad));
                }
                other => panic!("expected InvalidTau, got {other:?}"),
            }
            assert!(matches!(
                searcher.search_ta(&query, &options).unwrap_err(),
                SearchError::InvalidTau { .. }
            ));
        }

        // Boundary values stay admissible (τ = 0 and τ = 1 are legal).
        assert!(SearchOptions::new(1).with_tau(0.0).validate().is_ok());
        assert!(SearchOptions::new(1).with_tau(1.0).validate().is_ok());

        // Out-of-vocabulary term ids are a typed error, not a panic.
        let bogus = corpus.num_terms() as TermId;
        let ok = SearchOptions::new(3);
        assert_eq!(
            searcher.search_scan(bogus, &ok).unwrap_err(),
            SearchError::UnknownTerm { term: bogus }
        );
        assert_eq!(
            searcher
                .search_ta(
                    &KeywordQuery {
                        terms: vec![term, bogus]
                    },
                    &ok
                )
                .unwrap_err(),
            SearchError::UnknownTerm { term: bogus }
        );
    }

    #[test]
    fn budget_exhaustion_surfaces_as_error() {
        let (corpus, index) = setup();
        let term = (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap();
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let options = SearchOptions::new(10)
            .with_tau(0.2)
            .with_limits(SearchLimits {
                max_expansions: Some(1),
                ..SearchLimits::default()
            });
        assert!(searcher.search_scan(term, &options).is_err());
    }
}
