//! The document corpus: documents + vocabulary + document frequencies.

use crate::chunked::ChunkedVec;
use crate::document::{DocId, Document, TermId};
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;
use crate::vocab::Vocabulary;
use std::sync::Arc;

/// An in-memory corpus with everything Eq. 3 / Eq. 4 need precomputed:
/// per-term document frequencies and the IDF table.
///
/// The statistics (vocabulary, df, IDF) live behind [`Arc`]s: they are
/// immutable after [`CorpusBuilder::build`] — [`Corpus::append_frozen`]
/// adds documents *without* touching them — so clones share the tables.
/// The documents themselves live in a [`ChunkedVec`]: fixed-size
/// `Arc`-shared chunks, so cloning a corpus epoch copies chunk pointers
/// only and an append batch deep-copies at most the partial tail chunk
/// (DESIGN.md §14) — never the whole document list, and never a
/// production-sized vocabulary.
#[derive(Debug, Clone)]
pub struct Corpus {
    vocab: Arc<Vocabulary>,
    docs: ChunkedVec<Document>,
    doc_freq: Arc<Vec<u32>>,
    /// `idf(t) = max(0, ln(N / (df(t) + 1)))` — clamped at zero so scores
    /// and Jaccard weights stay non-negative (terms present in almost every
    /// document otherwise get a (small) negative IDF, which would break the
    /// score invariants; ranking shape is unaffected).
    idf: Arc<Vec<f64>>,
}

impl Corpus {
    /// Starts building a corpus by adding documents.
    pub fn builder() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.vocab.len()
    }

    /// The document with id `d`.
    pub fn doc(&self, d: DocId) -> &Document {
        &self.docs[d as usize]
    }

    /// Iterates all documents in id order.
    pub fn docs(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    /// The chunked document store itself — the snapshot layer persists
    /// it chunk-by-chunk so sealed chunks can be skipped on incremental
    /// checkpoints (DESIGN.md §14).
    pub fn doc_store(&self) -> &ChunkedVec<Document> {
        &self.docs
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Document frequency `df(t)` — number of documents containing `t`.
    pub fn doc_freq(&self, t: TermId) -> u32 {
        self.doc_freq[t as usize]
    }

    /// Inverse document frequency (clamped at zero; see struct docs).
    #[inline]
    pub fn idf(&self, t: TermId) -> f64 {
        self.idf[t as usize]
    }

    /// The full IDF table, indexed by term id.
    pub fn idf_table(&self) -> &[f64] {
        &self.idf
    }

    /// Looks up a (lowercase) term.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.get(term)
    }

    /// Maximum document frequency over all terms (`π` in §8's kfreq
    /// banding). Zero for an empty corpus.
    pub fn max_doc_freq(&self) -> u32 {
        self.doc_freq.iter().copied().max().unwrap_or(0)
    }

    /// Reassembles a corpus from decoded snapshot parts
    /// ([`crate::persist`]); the caller has validated shape invariants
    /// (table sizes, term-id ranges, finite weights).
    pub(crate) fn from_parts(
        vocab: Vocabulary,
        docs: ChunkedVec<Document>,
        doc_freq: Vec<u32>,
        idf: Vec<f64>,
    ) -> Corpus {
        Corpus {
            vocab: Arc::new(vocab),
            docs,
            doc_freq: Arc::new(doc_freq),
            idf: Arc::new(idf),
        }
    }

    /// Appends documents **without touching the statistics epoch**: the
    /// vocabulary, document frequencies, and IDF table stay exactly as
    /// [`CorpusBuilder::build`] computed them, so every already-indexed
    /// posting's partial score remains bit-exact while the new documents
    /// are scored under the same frozen weights. This is the substrate of
    /// the live-update path ([`crate::segments`]): immutable index
    /// segments are only possible if the corpus-global statistics they
    /// bake in cannot drift underneath them. Statistics are refreshed by
    /// building a fresh corpus (a new epoch), never in place.
    ///
    /// Returns the id range assigned to the new documents.
    ///
    /// # Panics
    /// Panics if a document references a term outside the frozen
    /// vocabulary (live additions cannot grow the vocabulary mid-epoch).
    pub fn append_frozen(
        &mut self,
        docs: impl IntoIterator<Item = Document>,
    ) -> std::ops::Range<DocId> {
        let start = self.docs.len() as DocId;
        for doc in docs {
            assert!(
                doc.terms
                    .iter()
                    .all(|&(t, _)| (t as usize) < self.vocab.len()),
                "appended document references a term outside the frozen vocabulary"
            );
            self.docs.push(doc);
        }
        start..self.docs.len() as DocId
    }
}

/// Incremental corpus builder.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    vocab: Vocabulary,
    docs: Vec<Document>,
}

impl CorpusBuilder {
    /// Pre-interns a synthetic vocabulary of `n` terms (`t000000` …) so
    /// generated corpora can add documents by term id directly.
    pub fn with_synthetic_vocab(n: usize) -> CorpusBuilder {
        CorpusBuilder {
            vocab: Vocabulary::synthetic(n),
            docs: Vec::new(),
        }
    }

    /// Tokenizes `text`, removes stop words, and adds the document.
    /// Returns its [`DocId`].
    pub fn add_text(&mut self, title: &str, text: &str) -> DocId {
        let tokens: Vec<TermId> = tokenize(text)
            .into_iter()
            .filter(|t| !is_stopword(t))
            .map(|t| self.vocab.intern(&t))
            .collect();
        self.add_tokens(title.to_owned(), tokens)
    }

    /// Adds a document from pre-interned token ids (synthetic corpora).
    ///
    /// # Panics
    /// Panics if a token id is outside the current vocabulary.
    pub fn add_tokens(&mut self, title: String, tokens: Vec<TermId>) -> DocId {
        assert!(
            tokens.iter().all(|&t| (t as usize) < self.vocab.len()),
            "token id outside vocabulary"
        );
        let id = self.docs.len() as DocId;
        self.docs.push(Document::from_tokens(title, tokens));
        id
    }

    /// Adds an already-built [`Document`] (e.g. one carried over from
    /// another corpus sharing the same vocabulary — how the live-update
    /// bench derives its base epoch from a larger generated corpus).
    ///
    /// # Panics
    /// Panics if the document references a term outside the vocabulary.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        assert!(
            doc.terms
                .iter()
                .all(|&(t, _)| (t as usize) < self.vocab.len()),
            "document references a term outside the vocabulary"
        );
        let id = self.docs.len() as DocId;
        self.docs.push(doc);
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Finalizes: computes document frequencies and the IDF table.
    pub fn build(self) -> Corpus {
        let n_terms = self.vocab.len();
        let n_docs = self.docs.len();
        let mut doc_freq = vec![0u32; n_terms];
        for d in &self.docs {
            for &(t, _) in &d.terms {
                doc_freq[t as usize] += 1;
            }
        }
        let idf = doc_freq
            .iter()
            .map(|&df| {
                if n_docs == 0 {
                    0.0
                } else {
                    (n_docs as f64 / (df as f64 + 1.0)).ln().max(0.0)
                }
            })
            .collect();
        Corpus {
            vocab: Arc::new(self.vocab),
            docs: self.docs.into_iter().collect(),
            doc_freq: Arc::new(doc_freq),
            idf: Arc::new(idf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "the quick brown fox jumps over the lazy dog");
        b.add_text("d1", "the quick red fox");
        b.add_text("d2", "a lazy dog sleeps");
        b.build()
    }

    #[test]
    fn stopwords_are_removed() {
        let c = tiny_corpus();
        assert_eq!(c.term_id("the"), None);
        assert!(c.term_id("quick").is_some());
        // d0: quick brown fox jumps over? "over" is a stop word.
        assert_eq!(c.doc(0).len, 6); // quick brown fox jumps lazy dog
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let c = tiny_corpus();
        let fox = c.term_id("fox").unwrap();
        assert_eq!(c.doc_freq(fox), 2);
        let lazy = c.term_id("lazy").unwrap();
        assert_eq!(c.doc_freq(lazy), 2);
        assert_eq!(c.max_doc_freq(), 2);
    }

    #[test]
    fn idf_is_nonnegative_and_monotone_in_rarity() {
        let c = tiny_corpus();
        let fox = c.term_id("fox").unwrap(); // df 2
        let brown = c.term_id("brown").unwrap(); // df 1
        assert!(c.idf(brown) > c.idf(fox));
        assert!(c.idf_table().iter().all(|&x| x >= 0.0));
        // idf(fox) = ln(3/3) = 0 exactly (clamped case boundary).
        assert_eq!(c.idf(fox), 0.0);
    }

    #[test]
    fn synthetic_builder_round_trip() {
        let mut b = CorpusBuilder::with_synthetic_vocab(10);
        b.add_tokens("s0".into(), vec![0, 0, 3]);
        b.add_tokens("s1".into(), vec![3, 9]);
        let c = b.build();
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.doc_freq(3), 2);
        assert_eq!(c.doc_freq(0), 1);
        assert_eq!(c.doc(0).tf(0), 2);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_unknown_token_ids() {
        let mut b = CorpusBuilder::with_synthetic_vocab(2);
        b.add_tokens("bad".into(), vec![5]);
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::builder().build();
        assert_eq!(c.num_docs(), 0);
        assert_eq!(c.max_doc_freq(), 0);
    }

    #[test]
    fn append_frozen_keeps_the_statistics_epoch_pinned() {
        let mut c = tiny_corpus();
        let fox = c.term_id("fox").unwrap();
        let idf_before: Vec<f64> = c.idf_table().to_vec();
        let df_before = c.doc_freq(fox);
        let range = c.append_frozen(vec![
            Document::from_tokens("new".into(), vec![fox, fox]),
            Document::from_tokens("empty".into(), vec![]),
        ]);
        assert_eq!(range, 3..5);
        assert_eq!(c.num_docs(), 5);
        assert_eq!(c.doc(3).tf(fox), 2);
        // Frozen epoch: df and idf are untouched by the append.
        assert_eq!(c.doc_freq(fox), df_before);
        assert_eq!(c.idf_table(), idf_before.as_slice());
    }

    #[test]
    #[should_panic(expected = "frozen vocabulary")]
    fn append_frozen_rejects_out_of_vocabulary_terms() {
        let mut c = tiny_corpus();
        let bogus = c.num_terms() as TermId;
        c.append_frozen(vec![Document::from_tokens("bad".into(), vec![bogus])]);
    }

    #[test]
    fn builder_add_document_round_trips() {
        let mut b = CorpusBuilder::with_synthetic_vocab(6);
        let doc = Document::from_tokens("carried".into(), vec![1, 1, 5]);
        let id = b.add_document(doc.clone());
        assert_eq!(id, 0);
        let c = b.build();
        assert_eq!(c.doc(0), &doc);
        assert_eq!(c.doc_freq(1), 1);
    }
}
