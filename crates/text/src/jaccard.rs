//! Weighted (generalized) Jaccard similarity over term multisets
//! (Eq. 4 of the paper):
//!
//! ```text
//! sim(d1, d2) = Σ_{w ∈ d1 ∩ d2} idf(w) / Σ_{w ∈ d1 ∪ d2} idf(w)
//! ```
//!
//! where `∩`/`∪` are **multiset** intersection/union — i.e. each term `w`
//! contributes `idf(w) · min(c1, c2)` to the numerator and
//! `idf(w) · max(c1, c2)` to the denominator.

use crate::corpus::Corpus;
use crate::document::Document;

/// Eq. 4 over two document signatures using the corpus IDF table.
/// Returns a value in `[0, 1]`; two empty (or all-zero-IDF) documents get 0.
pub fn weighted_jaccard(corpus: &Corpus, d1: &Document, d2: &Document) -> f64 {
    weighted_jaccard_with(corpus.idf_table(), d1, d2)
}

/// Total IDF weight of a document: `W(d) = Σ_w idf(w)·count(w)`.
///
/// Upper-bound lemma used by [`similar_above`]:
/// `sim(d1, d2) ≤ min(W1, W2) / max(W1, W2)` because the multiset
/// intersection weighs at most `min(W1, W2)` and the union at least
/// `max(W1, W2)`.
pub fn total_weight(idf: &[f64], d: &Document) -> f64 {
    d.terms
        .iter()
        .map(|&(t, c)| idf[t as usize] * c as f64)
        .sum()
}

/// `sim(d1, d2) > τ`, with an O(1) weight-ratio rejection before the full
/// merge. `w1`/`w2` are the documents' [`total_weight`] values. This is the
/// predicate the diversity-graph construction evaluates `O(|S|²)` times —
/// most pairs differ enough in total weight to be rejected without
/// touching the signatures.
pub fn similar_above(
    idf: &[f64],
    d1: &Document,
    w1: f64,
    d2: &Document,
    w2: f64,
    tau: f64,
) -> bool {
    let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
    if hi <= 0.0 || lo / hi <= tau {
        return false;
    }
    weighted_jaccard_with(idf, d1, d2) > tau
}

/// Eq. 4 with an explicit per-term weight table.
pub fn weighted_jaccard_with(idf: &[f64], d1: &Document, d2: &Document) -> f64 {
    let mut inter = 0.0f64;
    let mut union = 0.0f64;
    let (a, b) = (&d1.terms, &d2.terms);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ta, ca) = a[i];
        let (tb, cb) = b[j];
        match ta.cmp(&tb) {
            std::cmp::Ordering::Less => {
                union += idf[ta as usize] * ca as f64;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += idf[tb as usize] * cb as f64;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let w = idf[ta as usize];
                inter += w * ca.min(cb) as f64;
                union += w * ca.max(cb) as f64;
                i += 1;
                j += 1;
            }
        }
    }
    for &(t, c) in &a[i..] {
        union += idf[t as usize] * c as f64;
    }
    for &(t, c) in &b[j..] {
        union += idf[t as usize] * c as f64;
    }
    if union <= 0.0 { 0.0 } else { inter / union }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(tokens: &[u32]) -> Document {
        Document::from_tokens("t".into(), tokens.to_vec())
    }

    #[test]
    fn identical_docs_have_similarity_one() {
        let idf = vec![1.0; 10];
        let d = doc(&[1, 2, 2, 5]);
        assert_eq!(weighted_jaccard_with(&idf, &d, &d), 1.0);
    }

    #[test]
    fn disjoint_docs_have_similarity_zero() {
        let idf = vec![1.0; 10];
        assert_eq!(
            weighted_jaccard_with(&idf, &doc(&[1, 2]), &doc(&[3, 4])),
            0.0
        );
    }

    #[test]
    fn multiset_counts_matter() {
        // d1 = {a:2}, d2 = {a:1}: inter = 1, union = 2 → 0.5.
        let idf = vec![1.0; 4];
        let s = weighted_jaccard_with(&idf, &doc(&[0, 0]), &doc(&[0]));
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_tilt_the_ratio() {
        // Shared term has weight 3, the unshared ones weight 1:
        // d1 = {0,1}, d2 = {0,2} → inter = 3, union = 3 + 1 + 1 = 5.
        let idf = vec![3.0, 1.0, 1.0];
        let s = weighted_jaccard_with(&idf, &doc(&[0, 1]), &doc(&[0, 2]));
        assert!((s - 0.6).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let idf = vec![0.5, 2.0, 1.5, 1.0];
        let d1 = doc(&[0, 1, 1, 3]);
        let d2 = doc(&[1, 2, 3, 3]);
        assert_eq!(
            weighted_jaccard_with(&idf, &d1, &d2),
            weighted_jaccard_with(&idf, &d2, &d1)
        );
    }

    #[test]
    fn bounded_in_unit_interval() {
        let idf = vec![1.0, 0.3, 2.5, 0.0, 4.0];
        let docs = [
            doc(&[0, 1, 2]),
            doc(&[2, 3, 4]),
            doc(&[0, 0, 0, 4]),
            doc(&[]),
        ];
        for a in &docs {
            for b in &docs {
                let s = weighted_jaccard_with(&idf, a, b);
                assert!((0.0..=1.0).contains(&s), "sim {s}");
            }
        }
    }

    #[test]
    fn empty_docs_are_dissimilar_not_nan() {
        let idf = vec![1.0];
        assert_eq!(weighted_jaccard_with(&idf, &doc(&[]), &doc(&[])), 0.0);
    }

    #[test]
    fn prefilter_agrees_with_full_computation() {
        use divtopk_core::rng::Pcg;
        let mut rng = Pcg::new(31);
        let idf: Vec<f64> = (0..40).map(|_| rng.unit_f64() * 3.0).collect();
        let docs: Vec<Document> = (0..30)
            .map(|i| {
                let len = rng.range(1, 40) as usize;
                let tokens: Vec<u32> = (0..len).map(|_| rng.below(40)).collect();
                Document::from_tokens(format!("d{i}"), tokens)
            })
            .collect();
        let weights: Vec<f64> = docs.iter().map(|d| total_weight(&idf, d)).collect();
        for tau in [0.2, 0.5, 0.8] {
            for i in 0..docs.len() {
                for j in 0..docs.len() {
                    let fast = similar_above(&idf, &docs[i], weights[i], &docs[j], weights[j], tau);
                    let slow = weighted_jaccard_with(&idf, &docs[i], &docs[j]) > tau;
                    assert_eq!(fast, slow, "docs {i},{j} τ {tau}");
                }
            }
        }
    }

    #[test]
    fn corpus_integration() {
        let mut b = crate::corpus::Corpus::builder();
        b.add_text("a", "databases store structured data");
        b.add_text("b", "databases store structured data"); // duplicate
        b.add_text("c", "poetry about mountains");
        // Filler so the duplicated terms keep a positive IDF
        // (idf = ln(N/(df+1)) clamps to 0 when df + 1 ≥ N).
        for i in 0..4 {
            b.add_text(&format!("f{i}"), "filler noise words everywhere");
        }
        let c = b.build();
        let s_dup = weighted_jaccard(&c, c.doc(0), c.doc(1));
        let s_diff = weighted_jaccard(&c, c.doc(0), c.doc(2));
        assert_eq!(s_dup, 1.0);
        assert_eq!(s_diff, 0.0);
    }
}
