//! Length-normalized TF·IDF scoring (Eq. 3 of the paper):
//!
//! ```text
//! score(q, d) = Σ_{qi ∈ q} tf(qi, d) · idf(qi) / sqrt(len(d))
//! ```

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};
use divtopk_core::Score;

/// The contribution of a single query term to a document's score
/// (`tf · idf / sqrt(len)`), the unit both the inverted-index postings and
/// the threshold algorithm work in. Zero for documents of length zero.
pub fn partial_score(corpus: &Corpus, term: TermId, doc: DocId) -> f64 {
    let d = corpus.doc(doc);
    if d.len == 0 {
        return 0.0;
    }
    d.tf(term) as f64 * corpus.idf(term) / (d.len as f64).sqrt()
}

/// Eq. 3: full query score for a document.
pub fn score(corpus: &Corpus, query: &[TermId], doc: DocId) -> Score {
    let total: f64 = query.iter().map(|&t| partial_score(corpus, t, doc)).sum();
    Score::new(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "apple orchard apple harvest"); // apple x2
        b.add_text("d1", "apple pie recipe");
        b.add_text("d2", "orchard visit");
        b.add_text("d3", "unrelated text entirely");
        b.build()
    }

    #[test]
    fn score_matches_manual_computation() {
        let c = corpus();
        let apple = c.term_id("apple").unwrap();
        // df(apple) = 2, N = 4 → idf = ln(4/3).
        let idf = (4.0f64 / 3.0).ln();
        assert!((c.idf(apple) - idf).abs() < 1e-12);
        // d0: tf = 2, len = 4 → 2·idf/2 = idf.
        let got = score(&c, &[apple], 0);
        assert!((got.get() - idf).abs() < 1e-12, "{got}");
    }

    #[test]
    fn multi_term_scores_add() {
        let c = corpus();
        let apple = c.term_id("apple").unwrap();
        let orchard = c.term_id("orchard").unwrap();
        let s_both = score(&c, &[apple, orchard], 0).get();
        let s_a = score(&c, &[apple], 0).get();
        let s_o = score(&c, &[orchard], 0).get();
        assert!((s_both - (s_a + s_o)).abs() < 1e-12);
    }

    #[test]
    fn absent_term_contributes_zero() {
        let c = corpus();
        let apple = c.term_id("apple").unwrap();
        assert_eq!(score(&c, &[apple], 2), Score::ZERO);
        assert_eq!(score(&c, &[apple], 3), Score::ZERO);
    }

    #[test]
    fn length_normalization_prefers_focused_docs() {
        let mut b = Corpus::builder();
        b.add_text("focused", "rust");
        b.add_text(
            "diluted",
            "rust language compiler borrow checker memory safety",
        );
        // Make "rust" rare enough for a positive idf.
        for i in 0..8 {
            b.add_text(&format!("filler{i}"), "unrelated filler words");
        }
        let c = b.build();
        let rust = c.term_id("rust").unwrap();
        assert!(score(&c, &[rust], 0) > score(&c, &[rust], 1));
    }

    #[test]
    fn scores_are_finite_nonnegative() {
        let c = corpus();
        for t in 0..c.num_terms() as TermId {
            for d in 0..c.num_docs() as DocId {
                let s = score(&c, &[t], d);
                assert!(s.get() >= 0.0 && s.get().is_finite());
            }
        }
    }
}
