//! Sequential inverted-list scan as an **incremental** result source.
//!
//! For single-keyword queries (the paper's reuters setup, §8) the posting
//! list — sorted by partial score, which *is* the full Eq. 3 score for one
//! term — already enumerates results in non-increasing score order. That is
//! precisely the incremental top-k framework (Algorithm 1): the unseen
//! bound is the score of the last emitted result.

use crate::document::{DocId, TermId};
use crate::index::{InvertedIndex, Posting};
use divtopk_core::{ResultSource, Score, Scored, UnseenBound};

/// Incremental scan of one posting list.
pub struct ScanSource<'a> {
    postings: std::slice::Iter<'a, Posting>,
    last: Option<Score>,
}

impl<'a> ScanSource<'a> {
    /// Creates a scan source for a single-keyword query.
    pub fn new(index: &'a InvertedIndex, term: TermId) -> ScanSource<'a> {
        ScanSource {
            postings: index.postings(term).iter(),
            last: None,
        }
    }
}

impl ResultSource for ScanSource<'_> {
    type Item = DocId;

    fn next_result(&mut self) -> Option<Scored<DocId>> {
        let p = self.postings.next()?;
        let score = Score::new(p.partial);
        self.last = Some(score);
        Some(Scored::new(p.doc, score))
    }

    fn unseen_bound(&self) -> UnseenBound {
        match self.last {
            Some(s) => UnseenBound::At(s),
            None => UnseenBound::Unbounded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::tfidf;

    /// The engine's worker threads move per-shard sources across threads.
    #[test]
    fn text_sources_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ScanSource<'_>>();
        assert_send::<crate::ta::TaSource<'_>>();
        assert_send::<divtopk_core::MergedSource<ScanSource<'_>>>();
    }

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "wheat prices rose");
        b.add_text("d1", "wheat wheat harvest");
        b.add_text("d2", "oil prices fell");
        b.add_text("d3", "currency markets stable");
        b.build()
    }

    #[test]
    fn emits_in_nonincreasing_score_order() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let wheat = c.term_id("wheat").unwrap();
        let mut src = ScanSource::new(&idx, wheat);
        let mut scores = Vec::new();
        while let Some(r) = src.next_result() {
            let want = tfidf::score(&c, &[wheat], r.item);
            assert!(r.score.approx_eq(want, 1e-12));
            scores.push(r.score);
        }
        assert_eq!(scores.len(), 2); // d0 and d1
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn bound_tracks_last_emitted() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let prices = c.term_id("prices").unwrap();
        let mut src = ScanSource::new(&idx, prices);
        assert_eq!(src.unseen_bound(), UnseenBound::Unbounded);
        let first = src.next_result().unwrap();
        assert_eq!(src.unseen_bound(), UnseenBound::At(first.score));
    }

    #[test]
    fn term_absent_from_corpus_is_empty() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let stable = c.term_id("stable").unwrap();
        let mut src = ScanSource::new(&idx, stable);
        assert!(src.next_result().is_some()); // d3 contains it once
        assert!(src.next_result().is_none());
    }
}
