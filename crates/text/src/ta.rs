//! Fagin's Threshold Algorithm as a **bounding** result source.
//!
//! For a multi-keyword query (the paper's enwiki setup, §8), the score of a
//! document is the sum of per-term partial scores (Eq. 3). The TA performs
//! sorted accesses round-robin over the query terms' posting lists; on the
//! first sighting of a document it random-accesses the remaining terms to
//! compute the full score, and the *threshold* — the sum of the partial
//! scores at the current list positions — upper-bounds every document not
//! yet seen. That threshold is exactly the `unseen` bound of the bounding
//! top-k framework (Algorithm 2), which the diversified-search engine
//! consumes unchanged.

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};
use crate::index::InvertedIndex;
use crate::tfidf;
use divtopk_core::{ResultSource, Score, Scored, UnseenBound};
use std::collections::HashSet;
use std::collections::VecDeque;

/// Threshold-algorithm source over an index for one multi-keyword query.
pub struct TaSource<'a> {
    corpus: &'a Corpus,
    query: Vec<TermId>,
    lists: Vec<&'a [crate::index::Posting]>,
    cursors: Vec<usize>,
    /// Which list the next sorted access hits.
    next_list: usize,
    seen: HashSet<DocId>,
    /// Fully-scored documents discovered but not yet handed out.
    buffer: VecDeque<Scored<DocId>>,
    /// Sorted accesses performed (exposed for benches).
    sorted_accesses: u64,
    /// Random accesses performed (exposed for benches).
    random_accesses: u64,
}

impl<'a> TaSource<'a> {
    /// Creates a TA source for `query` (term ids; duplicates are removed).
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, query: &[TermId]) -> TaSource<'a> {
        let mut terms: Vec<TermId> = query.to_vec();
        terms.sort_unstable();
        terms.dedup();
        let lists = terms.iter().map(|&t| index.postings(t)).collect::<Vec<_>>();
        TaSource {
            corpus,
            cursors: vec![0; terms.len()],
            next_list: 0,
            query: terms,
            lists,
            seen: HashSet::new(),
            buffer: VecDeque::new(),
            sorted_accesses: 0,
            random_accesses: 0,
        }
    }

    /// Threshold over unseen documents: sum of the partial scores at the
    /// current cursor positions (an exhausted list contributes 0).
    fn threshold(&self) -> f64 {
        self.lists
            .iter()
            .zip(&self.cursors)
            .map(|(list, &cur)| list.get(cur).map_or(0.0, |p| p.partial))
            .sum()
    }

    /// True when every list is exhausted.
    fn exhausted(&self) -> bool {
        self.lists
            .iter()
            .zip(&self.cursors)
            .all(|(list, &cur)| cur >= list.len())
    }

    /// Performs sorted accesses until one *new* document is buffered or all
    /// lists are exhausted.
    fn pump(&mut self) {
        while self.buffer.is_empty() && !self.exhausted() {
            // Round-robin: find the next non-exhausted list.
            let m = self.lists.len();
            let mut picked = None;
            for offset in 0..m {
                let j = (self.next_list + offset) % m;
                if self.cursors[j] < self.lists[j].len() {
                    picked = Some(j);
                    self.next_list = (j + 1) % m;
                    break;
                }
            }
            let Some(j) = picked else { return };
            let posting = self.lists[j][self.cursors[j]];
            self.cursors[j] += 1;
            self.sorted_accesses += 1;
            if self.seen.insert(posting.doc) {
                // Random accesses for the other query terms (Eq. 3 total).
                let mut total = posting.partial;
                for (i, &t) in self.query.iter().enumerate() {
                    if i != j {
                        total += tfidf::partial_score(self.corpus, t, posting.doc);
                        self.random_accesses += 1;
                    }
                }
                self.buffer
                    .push_back(Scored::new(posting.doc, Score::new(total)));
            }
        }
    }

    /// Sorted accesses performed so far.
    pub fn sorted_accesses(&self) -> u64 {
        self.sorted_accesses
    }

    /// Random accesses performed so far.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses
    }
}

impl ResultSource for TaSource<'_> {
    type Item = DocId;

    fn next_result(&mut self) -> Option<Scored<DocId>> {
        if self.buffer.is_empty() {
            self.pump();
        }
        self.buffer.pop_front()
    }

    fn unseen_bound(&self) -> UnseenBound {
        // The threshold bounds documents never touched; buffered documents
        // have been scored but not yet returned, so the bound must cover
        // them as well.
        let mut bound = self.threshold();
        for b in &self.buffer {
            bound = bound.max(b.score.get());
        }
        UnseenBound::At(Score::new(bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "apple banana apple");
        b.add_text("d1", "apple cherry");
        b.add_text("d2", "banana cherry banana");
        b.add_text("d3", "durian fig");
        b.add_text("d4", "apple banana cherry");
        b.build()
    }

    /// Drains the source, checking the bound contract at every step.
    fn drain_checked(mut src: TaSource<'_>) -> Vec<Scored<DocId>> {
        let mut out = Vec::new();
        loop {
            let bound_before = match src.unseen_bound() {
                UnseenBound::At(s) => s,
                UnseenBound::Unbounded => Score::new(f64::INFINITY.min(f64::MAX)),
            };
            match src.next_result() {
                Some(r) => {
                    assert!(
                        r.score.get() <= bound_before.get() + 1e-9,
                        "emitted {} above bound {}",
                        r.score,
                        bound_before
                    );
                    out.push(r);
                }
                None => break,
            }
        }
        out
    }

    #[test]
    fn emits_each_matching_doc_exactly_once_with_correct_scores() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let q = vec![c.term_id("apple").unwrap(), c.term_id("banana").unwrap()];
        let src = TaSource::new(&c, &idx, &q);
        let mut results = drain_checked(src);
        results.sort_by_key(|r| r.item);
        let docs: Vec<DocId> = results.iter().map(|r| r.item).collect();
        assert_eq!(docs, vec![0, 1, 2, 4]); // d3 matches neither term
        for r in &results {
            let want = tfidf::score(&c, &q, r.item);
            assert!(r.score.approx_eq(want, 1e-12), "doc {}", r.item);
        }
    }

    #[test]
    fn bound_is_nonincreasing_over_time() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let q = vec![
            c.term_id("apple").unwrap(),
            c.term_id("banana").unwrap(),
            c.term_id("cherry").unwrap(),
        ];
        let mut src = TaSource::new(&c, &idx, &q);
        let mut last = f64::INFINITY;
        while src.next_result().is_some() {
            let UnseenBound::At(b) = src.unseen_bound() else {
                panic!("bound must be known after first access");
            };
            assert!(b.get() <= last + 1e-9);
            last = b.get();
        }
    }

    #[test]
    fn duplicate_query_terms_are_collapsed() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let apple = c.term_id("apple").unwrap();
        let src = TaSource::new(&c, &idx, &[apple, apple]);
        let results = drain_checked(src);
        assert_eq!(results.len(), 3); // d0, d1, d4
    }

    #[test]
    fn empty_query_yields_nothing() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let mut src = TaSource::new(&c, &idx, &[]);
        assert!(src.next_result().is_none());
    }

    #[test]
    fn access_counters_move() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let q = vec![c.term_id("apple").unwrap(), c.term_id("cherry").unwrap()];
        let mut src = TaSource::new(&c, &idx, &q);
        while src.next_result().is_some() {}
        assert!(src.sorted_accesses() > 0);
        assert!(src.random_accesses() > 0);
    }
}
