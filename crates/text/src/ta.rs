//! Fagin's Threshold Algorithm as a **bounding** result source.
//!
//! For a multi-keyword query (the paper's enwiki setup, §8), the score of a
//! document is the sum of per-term partial scores (Eq. 3). The TA performs
//! sorted accesses round-robin over the query terms' posting lists; on the
//! first sighting of a document it random-accesses the remaining terms to
//! compute the full score, and the *threshold* — the sum of the partial
//! scores at the current list positions — upper-bounds every document not
//! yet seen. That threshold is exactly the `unseen` bound of the bounding
//! top-k framework (Algorithm 2), which the diversified-search engine
//! consumes unchanged.

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};
use crate::index::InvertedIndex;
use crate::tfidf;
use divtopk_core::{ResultSource, Score, Scored, UnseenBound};
use std::collections::HashSet;
use std::collections::VecDeque;

/// Threshold-algorithm source over an index for one multi-keyword query.
///
/// Determinism: sorted accesses proceed in complete **rounds** (one access
/// per non-exhausted list, in term order), and all documents discovered in
/// the same round are emitted by `(score desc, doc asc)` — never by the
/// accident of which list surfaced them first. Repeated runs therefore
/// yield identical emission sequences.
///
/// Bound monotonicity: the reported unseen bound uses a **running minimum**
/// of the raw threshold, so it can never increase — not even across a
/// list-exhaustion boundary, where the raw per-round threshold jitters as
/// an exhausted list's contribution drops to zero mid-round. (The engine
/// clamps defensively per Lemma 2, but the source itself must be a valid
/// bounding source for the sharded merge, whose `max` of per-shard bounds
/// is only monotone if each input is.)
pub struct TaSource<'a> {
    corpus: &'a Corpus,
    query: Vec<TermId>,
    lists: Vec<&'a [crate::index::Posting]>,
    cursors: Vec<usize>,
    seen: HashSet<DocId>,
    /// Fully-scored documents discovered but not yet handed out, ordered
    /// `(score desc, doc asc)` within each discovery round.
    buffer: VecDeque<Scored<DocId>>,
    /// Running minimum of the raw threshold (see type docs).
    min_threshold: f64,
    /// Sorted accesses performed (exposed for benches).
    sorted_accesses: u64,
    /// Random accesses performed (exposed for benches).
    random_accesses: u64,
}

impl<'a> TaSource<'a> {
    /// Creates a TA source for `query` (term ids; duplicates are removed).
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, query: &[TermId]) -> TaSource<'a> {
        let mut terms: Vec<TermId> = query.to_vec();
        terms.sort_unstable();
        terms.dedup();
        let lists = terms.iter().map(|&t| index.postings(t)).collect::<Vec<_>>();
        let mut source = TaSource {
            corpus,
            cursors: vec![0; terms.len()],
            query: terms,
            lists,
            seen: HashSet::new(),
            buffer: VecDeque::new(),
            min_threshold: f64::INFINITY,
            sorted_accesses: 0,
            random_accesses: 0,
        };
        source.min_threshold = source.threshold();
        source
    }

    /// Raw threshold: sum of the partial scores at the current cursor
    /// positions (an exhausted list contributes 0). Upper-bounds every
    /// document no list has surfaced yet — but is *not* guaranteed
    /// monotone at exhaustion boundaries; consumers use `min_threshold`.
    fn threshold(&self) -> f64 {
        self.lists
            .iter()
            .zip(&self.cursors)
            .map(|(list, &cur)| list.get(cur).map_or(0.0, |p| p.partial))
            .sum()
    }

    /// True when every list is exhausted.
    fn exhausted(&self) -> bool {
        self.lists
            .iter()
            .zip(&self.cursors)
            .all(|(list, &cur)| cur >= list.len())
    }

    /// Performs complete rounds of sorted accesses (one per non-exhausted
    /// list, in term order) until at least one *new* document is buffered
    /// or all lists are exhausted. Documents discovered in the same round
    /// enter the buffer sorted `(score desc, doc asc)`.
    fn pump(&mut self) {
        while self.buffer.is_empty() && !self.exhausted() {
            let mut round: Vec<Scored<DocId>> = Vec::new();
            for j in 0..self.lists.len() {
                let Some(&posting) = self.lists[j].get(self.cursors[j]) else {
                    continue;
                };
                self.cursors[j] += 1;
                self.sorted_accesses += 1;
                if self.seen.insert(posting.doc) {
                    // Random accesses for the other query terms (Eq. 3).
                    // The full score is recomputed canonically — every
                    // term in ascending order through the same
                    // [`tfidf::score`] expression — rather than seeded
                    // from the surfacing posting's stored partial. Float
                    // addition is not associative, so a surfacing-order
                    // sum differs in the last ulp depending on *which
                    // list happened to see the document first*; that
                    // breaks exact hit equality between a segmented
                    // index and its from-scratch rebuild (tests/
                    // segments.rs) and between shard layouts. This way
                    // an emitted score is bit-for-bit Eq. 3.
                    let total = tfidf::score(self.corpus, &self.query, posting.doc);
                    self.random_accesses += self.query.len() as u64 - 1;
                    round.push(Scored::new(posting.doc, total));
                }
            }
            round.sort_by(|a, b| b.score.cmp(&a.score).then(a.item.cmp(&b.item)));
            self.buffer.extend(round);
            self.min_threshold = self.min_threshold.min(self.threshold());
        }
    }

    /// Sorted accesses performed so far.
    pub fn sorted_accesses(&self) -> u64 {
        self.sorted_accesses
    }

    /// Random accesses performed so far.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses
    }
}

impl ResultSource for TaSource<'_> {
    type Item = DocId;

    fn next_result(&mut self) -> Option<Scored<DocId>> {
        if self.buffer.is_empty() {
            self.pump();
        }
        self.buffer.pop_front()
    }

    fn unseen_bound(&self) -> UnseenBound {
        // The running-min threshold bounds documents never touched;
        // buffered documents have been scored but not yet returned, so the
        // bound must cover them as well. Both components are non-increasing
        // over time (buffered scores were ≤ the running-min threshold at
        // discovery), so the reported bound is monotone.
        let mut bound = self.min_threshold;
        for b in &self.buffer {
            bound = bound.max(b.score.get());
        }
        UnseenBound::At(Score::new(bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "apple banana apple");
        b.add_text("d1", "apple cherry");
        b.add_text("d2", "banana cherry banana");
        b.add_text("d3", "durian fig");
        b.add_text("d4", "apple banana cherry");
        b.build()
    }

    /// Drains the source, checking the bound contract at every step.
    fn drain_checked(mut src: TaSource<'_>) -> Vec<Scored<DocId>> {
        let mut out = Vec::new();
        loop {
            let bound_before = match src.unseen_bound() {
                UnseenBound::At(s) => s,
                UnseenBound::Unbounded => Score::new(f64::INFINITY.min(f64::MAX)),
            };
            match src.next_result() {
                Some(r) => {
                    assert!(
                        r.score.get() <= bound_before.get() + 1e-9,
                        "emitted {} above bound {}",
                        r.score,
                        bound_before
                    );
                    out.push(r);
                }
                None => break,
            }
        }
        out
    }

    #[test]
    fn emits_each_matching_doc_exactly_once_with_correct_scores() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let q = vec![c.term_id("apple").unwrap(), c.term_id("banana").unwrap()];
        let src = TaSource::new(&c, &idx, &q);
        let mut results = drain_checked(src);
        results.sort_by_key(|r| r.item);
        let docs: Vec<DocId> = results.iter().map(|r| r.item).collect();
        assert_eq!(docs, vec![0, 1, 2, 4]); // d3 matches neither term
        for r in &results {
            let want = tfidf::score(&c, &q, r.item);
            assert!(r.score.approx_eq(want, 1e-12), "doc {}", r.item);
        }
    }

    #[test]
    fn bound_is_nonincreasing_over_time() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let q = vec![
            c.term_id("apple").unwrap(),
            c.term_id("banana").unwrap(),
            c.term_id("cherry").unwrap(),
        ];
        let mut src = TaSource::new(&c, &idx, &q);
        let mut last = f64::INFINITY;
        while src.next_result().is_some() {
            let UnseenBound::At(b) = src.unseen_bound() else {
                panic!("bound must be known after first access");
            };
            assert!(b.get() <= last + 1e-9);
            last = b.get();
        }
    }

    /// Regression (bugfix PR 3): the reported bound must be non-increasing
    /// at *every* step all the way to exhaustion, including across the
    /// boundaries where individual lists run dry mid-query. The corpus is
    /// crafted so the query's lists have very different lengths (one term
    /// in almost every document, one in exactly two, one in one), forcing
    /// staggered exhaustion while pulls continue.
    #[test]
    fn bound_monotone_to_exhaustion_across_list_boundaries() {
        let mut b = Corpus::builder();
        for i in 0..12 {
            // "common" everywhere; the rare terms only early on.
            let rare = match i {
                0 => "rare1 rare2",
                1 => "rare1",
                _ => "",
            };
            b.add_text(&format!("d{i}"), &format!("common filler{i} {rare}"));
        }
        let c = b.build();
        let idx = InvertedIndex::build(&c);
        let q = vec![
            c.term_id("common").unwrap(),
            c.term_id("rare1").unwrap(),
            c.term_id("rare2").unwrap(),
        ];
        let mut src = TaSource::new(&c, &idx, &q);
        let mut prev = match src.unseen_bound() {
            UnseenBound::At(s) => s.get(),
            UnseenBound::Unbounded => f64::INFINITY,
        };
        let mut pulled = 0;
        while let Some(r) = src.next_result() {
            pulled += 1;
            let UnseenBound::At(b) = src.unseen_bound() else {
                panic!("TA bound must always be known");
            };
            assert!(
                b.get() <= prev,
                "bound rose {prev} -> {} after pulling doc {}",
                b.get(),
                r.item
            );
            // The bound also genuinely covers the emitted result stream:
            // nothing pulled later may exceed it (checked transitively by
            // monotonicity + the per-pull check in `drain_checked`).
            prev = b.get();
        }
        assert_eq!(pulled, 12, "every matching doc must be emitted");
        assert!(src.exhausted());
    }

    /// Documents discovered in the same sorted-access round are emitted by
    /// `(score desc, doc asc)`, not by which posting list surfaced them.
    #[test]
    fn same_round_ties_emit_by_doc_id() {
        let mut b = Corpus::builder();
        // Two identical docs -> identical scores; plus filler for idf > 0.
        b.add_text("twin-a", "apple banana");
        b.add_text("twin-b", "apple banana");
        for i in 0..6 {
            b.add_text(&format!("f{i}"), "unrelated filler words");
        }
        let c = b.build();
        let idx = InvertedIndex::build(&c);
        let q = vec![c.term_id("apple").unwrap(), c.term_id("banana").unwrap()];
        let src = TaSource::new(&c, &idx, &q);
        let order: Vec<DocId> = drain_checked(src).iter().map(|r| r.item).collect();
        assert_eq!(order, vec![0, 1], "score ties must break by doc id");
    }

    #[test]
    fn duplicate_query_terms_are_collapsed() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let apple = c.term_id("apple").unwrap();
        let src = TaSource::new(&c, &idx, &[apple, apple]);
        let results = drain_checked(src);
        assert_eq!(results.len(), 3); // d0, d1, d4
    }

    #[test]
    fn empty_query_yields_nothing() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let mut src = TaSource::new(&c, &idx, &[]);
        assert!(src.next_result().is_none());
    }

    #[test]
    fn access_counters_move() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let q = vec![c.term_id("apple").unwrap(), c.term_id("cherry").unwrap()];
        let mut src = TaSource::new(&c, &idx, &q);
        while src.next_result().is_some() {}
        assert!(src.sorted_accesses() > 0);
        assert!(src.random_accesses() > 0);
    }
}
