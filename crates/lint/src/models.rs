//! The three concurrency models checked by the interleaving explorer.
//!
//! Each model is a faithful miniature of one hand-rolled protocol in the
//! workspace, built on the [`crate::sched`] shims, asserting that
//! protocol's DESIGN.md invariant under every explored schedule. Each
//! carries intentionally-broken variants — the exact bug the production
//! protocol defends against — which the regression tests require the
//! explorer to catch. That turns the prose soundness arguments into
//! executable fixtures: if a refactor ever weakens the real protocol the
//! same way, DESIGN.md §13 points at the model that proves why it breaks.
//!
//! | model | mirrors | invariant |
//! |---|---|---|
//! | [`pool_handshake`] | `divtopk_core::pool` inject/worker | no lost wakeup: every injected task executes and the scope completes |
//! | [`prefetch_pump`] | `divtopk_core::prefetch` park/re-spawn | exactly one pump alive; consumer drains all items in order |
//! | [`single_flight`] | `divtopk_engine::engine` inflight set | one computation per key; every waiter gets the value |

use crate::sched::{
    Explorer, Failure, Report, SimAtomicBool, SimCondvar, SimCounter, SimMutex, spawn,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::atomic::Ordering;

/// Which deliberate bug (if any) to plant in a model. `None` must pass
/// exhaustively; the others must be caught by the explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    None,
    /// `pool_handshake`: the injector skips the signal-mutex
    /// serialization before ringing the bell — the classic lost-wakeup
    /// window the real `WorkerPool::inject` closes by locking and
    /// dropping `signal` before `notify_one` (DESIGN.md §8).
    PoolSkipSignalSerialization,
    /// `prefetch_pump`: the consumer forgets to re-spawn the pump after
    /// popping from a parked feed — the queue never refills and the
    /// consumer waits forever (the re-spawn duty `Feed::pop` carries).
    PrefetchNoRespawn,
    /// `prefetch_pump`: the consumer re-spawns without checking the
    /// parked flag, so two pumps run concurrently — the second finds the
    /// source taken and the single-pump invariant breaks.
    PrefetchDoubleRespawn,
    /// `single_flight`: the claim holder releases the inflight claim
    /// *before* inserting into the cache, so a notified waiter re-misses
    /// and recomputes — the insert-before-release ordering
    /// `InflightClaim` exists to enforce.
    FlightInsertAfterRelease,
    /// `single_flight`: the claim holder never notifies the condvar —
    /// waiters sleep forever (the dropped-notify regression).
    FlightDropNotify,
}

// ---------------------------------------------------------------------
// Model 1: worker-pool handshake (divtopk_core::pool)
// ---------------------------------------------------------------------

struct PoolModel {
    queue: SimMutex<VecDeque<u32>>,
    /// The handshake mutex (`PoolShared::signal`).
    signal: SimMutex<()>,
    /// The wakeup condvar (`PoolShared::bell`).
    bell: SimCondvar,
    shutdown: SimAtomicBool,
    /// Completed-task count + completion condvar (the scope's wait-all).
    done: SimMutex<usize>,
    done_cv: SimCondvar,
}

/// The pool's inject/worker lost-wakeup handshake, `workers` workers ×
/// `tasks` tasks. Invariant: the injector's wait-all always completes
/// and every task executes exactly once — i.e. no notify is ever lost.
///
/// Protocol under test (mirrors `pool.rs` line for line):
/// * inject: push task → lock+drop `signal` → `bell.notify_one()`;
/// * worker: drain queue → lock `signal` → re-check shutdown and queue
///   under the lock → only then `bell.wait(signal)`.
pub fn pool_handshake(
    explorer: &Explorer,
    workers: usize,
    tasks: u32,
    bug: Bug,
) -> Result<Report, Failure> {
    explorer.explore(move || {
        let m = Arc::new(PoolModel {
            queue: SimMutex::new(VecDeque::new()),
            signal: SimMutex::new(()),
            bell: SimCondvar::new(),
            shutdown: SimAtomicBool::new(false),
            done: SimMutex::new(0),
            done_cv: SimCondvar::new(),
        });
        let mut handles = Vec::new();
        for _ in 0..workers {
            let m = Arc::clone(&m);
            handles.push(spawn(move || pool_worker(&m)));
        }
        // Injector (the scope owner): push every task, ring the bell,
        // then wait for all of them to complete before shutting down —
        // `WorkerPool::scope`'s wait-all. If a wakeup is lost, neither
        // the worker (waiting on the bell) nor the injector (waiting on
        // completion) can make progress: the explorer reports deadlock.
        for task in 0..tasks {
            m.queue.lock().push_back(task);
            if bug != Bug::PoolSkipSignalSerialization {
                // Serialize with any worker between its empty re-check
                // and its wait: by the time we ring, it is registered.
                drop(m.signal.lock());
            }
            m.bell.notify_one();
        }
        {
            let mut done = m.done.lock();
            while *done < tasks as usize {
                done = m.done_cv.wait(done);
            }
        }
        {
            let _serialize = m.signal.lock();
            m.shutdown.store(true, Ordering::SeqCst);
        }
        m.bell.notify_all();
        for h in handles {
            h.join();
        }
        let executed = *m.done.lock();
        assert!(
            executed == tasks as usize,
            "pool model: {executed} of {tasks} tasks executed"
        );
    })
}

fn pool_worker(m: &PoolModel) {
    loop {
        // Fast path: drain without touching the handshake mutex.
        while let Some(task) = m.queue.lock().pop_front() {
            pool_complete(m, task);
        }
        let guard = m.signal.lock();
        if m.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Re-check under the signal lock: a task pushed since the drain
        // would otherwise be missed while we sleep.
        let recheck = m.queue.lock().pop_front();
        if let Some(task) = recheck {
            drop(guard);
            pool_complete(m, task);
            continue;
        }
        drop(m.bell.wait(guard));
    }
}

fn pool_complete(m: &PoolModel, _task: u32) {
    let mut done = m.done.lock();
    *done += 1;
    m.done_cv.notify_all();
}

// ---------------------------------------------------------------------
// Model 2: prefetch park/re-spawn (divtopk_core::prefetch)
// ---------------------------------------------------------------------

struct FeedModel {
    state: SimMutex<FeedState>,
    ready: SimCondvar,
}

struct FeedState {
    queue: VecDeque<u32>,
    /// Models `FeedState::source: Option<S>` — `take`n for the
    /// duration of each out-of-lock pull.
    source_present: bool,
    next_item: u32,
    total: u32,
    closed: bool,
    parked: bool,
    /// Pumps currently holding the duty (entered, not yet parked or
    /// closed). Tracked under the state lock: a pump that has parked
    /// has relinquished the duty even if its thread has not yet exited,
    /// so this — not thread liveness — is the single-pump invariant.
    pumps_on_duty: usize,
}

/// The prefetch feed's cooperative pump: bounded queue of `depth`,
/// `total` items, pump parks when full, consumer re-spawns on pop.
/// Invariants: at most one pump is ever alive, and the consumer drains
/// all `total` items in source order.
pub fn prefetch_pump(
    explorer: &Explorer,
    depth: usize,
    total: u32,
    bug: Bug,
) -> Result<Report, Failure> {
    explorer.explore(move || {
        let m = Arc::new(FeedModel {
            state: SimMutex::new(FeedState {
                queue: VecDeque::new(),
                source_present: true,
                next_item: 0,
                total,
                closed: false,
                parked: false,
                pumps_on_duty: 0,
            }),
            ready: SimCondvar::new(),
        });
        let mut pumps = Vec::new();
        {
            let m = Arc::clone(&m);
            pumps.push(spawn(move || feed_pump(&m, depth)));
        }
        // Consumer: pop items until the feed closes (Feed::pop).
        let mut got = Vec::new();
        loop {
            let mut st = m.state.lock();
            let item = loop {
                if let Some(item) = st.queue.pop_front() {
                    break Some(item);
                }
                if st.closed {
                    break None;
                }
                st = m.ready.wait(st);
            };
            let Some(item) = item else { break };
            // The re-spawn duty: a parked pump runs no thread, so the
            // slot this pop just opened must be refilled by us.
            let respawn = match bug {
                Bug::PrefetchNoRespawn => false,
                Bug::PrefetchDoubleRespawn => true,
                _ => st.parked,
            };
            if respawn {
                st.parked = false;
                let m2 = Arc::clone(&m);
                pumps.push(spawn(move || feed_pump(&m2, depth)));
            }
            drop(st);
            got.push(item);
        }
        for p in pumps {
            p.join();
        }
        let expected: Vec<u32> = (0..total).collect();
        assert!(
            got == expected,
            "prefetch model: drained {got:?}, expected {expected:?}"
        );
    })
}

fn feed_pump(m: &FeedModel, depth: usize) {
    let mut entered = false;
    loop {
        let mut st = m.state.lock();
        if !entered {
            entered = true;
            st.pumps_on_duty += 1;
            assert!(
                st.pumps_on_duty == 1,
                "prefetch model: two pumps on duty at once"
            );
        }
        if st.queue.len() >= depth {
            // Queue full: park and relinquish the duty (still under the
            // lock — atomically w.r.t. any consumer respawn decision).
            // From here no pump runs; the consumer's pop re-spawns.
            st.parked = true;
            st.pumps_on_duty -= 1;
            return;
        }
        if !st.source_present {
            st.closed = true;
            st.pumps_on_duty -= 1;
            m.ready.notify_all();
            return;
        }
        if st.next_item >= st.total {
            // Source exhausted (pull returned None): close for good.
            st.source_present = false;
            st.closed = true;
            st.pumps_on_duty -= 1;
            m.ready.notify_all();
            return;
        }
        // Take the source and pull outside the lock (the whole point of
        // the protocol: the pull may be slow).
        st.source_present = false;
        let item = st.next_item;
        drop(st);
        let mut st = m.state.lock();
        st.source_present = true;
        st.next_item = item + 1;
        st.queue.push_back(item);
        m.ready.notify_all();
        drop(st);
    }
}

// ---------------------------------------------------------------------
// Model 3: single-flight cache fill (divtopk_engine::engine)
// ---------------------------------------------------------------------

struct FlightModel {
    /// The result cache (one key suffices for the protocol).
    cache: SimMutex<Option<u32>>,
    /// Models the `inflight: Mutex<HashSet<Key>>` — one key, so a bool.
    inflight: SimMutex<bool>,
    inflight_done: SimCondvar,
    computations: SimCounter,
}

/// The engine's single-flight fill: `callers` concurrent requests for
/// the same cold key. Invariants: the value is computed exactly once,
/// every caller observes it, and no waiter sleeps forever.
///
/// Mirrors `Engine::run_query`'s loop: lock inflight → probe cache →
/// claim if idle, else wait on `inflight_done` → compute outside all
/// locks → insert into cache → release claim → notify.
pub fn single_flight(explorer: &Explorer, callers: usize, bug: Bug) -> Result<Report, Failure> {
    explorer.explore(move || {
        let m = Arc::new(FlightModel {
            cache: SimMutex::new(None),
            inflight: SimMutex::new(false),
            inflight_done: SimCondvar::new(),
            computations: SimCounter::new(),
        });
        let mut handles = Vec::new();
        for _ in 0..callers {
            let m = Arc::clone(&m);
            handles.push(spawn(move || {
                let value = flight_caller(&m, bug);
                assert!(value == 42, "single-flight model: wrong value {value}");
            }));
        }
        for h in handles {
            h.join();
        }
        let computed = m.computations.get();
        assert!(
            computed == 1,
            "single-flight model: computed {computed} times for one key"
        );
    })
}

fn flight_caller(m: &FlightModel, bug: Bug) -> u32 {
    loop {
        let mut inflight = m.inflight.lock();
        // Cache probe under the inflight lock (the real code's lock
        // order: inflight, then cache, never the reverse).
        if let Some(value) = *m.cache.lock() {
            return value;
        }
        if !*inflight {
            *inflight = true;
            break;
        }
        inflight = m.inflight_done.wait(inflight);
    }
    // Claim held; compute outside every lock.
    let value = 42;
    m.computations.bump();
    if bug == Bug::FlightInsertAfterRelease {
        // Broken ordering: waiters wake, re-probe an empty cache, find
        // the claim free, and recompute.
        *m.inflight.lock() = false;
        m.inflight_done.notify_all();
        *m.cache.lock() = Some(value);
    } else {
        // Correct ordering (`InflightClaim`): the cache insert happens
        // before the claim drops, so a woken waiter's re-probe hits.
        *m.cache.lock() = Some(value);
        *m.inflight.lock() = false;
        if bug != Bug::FlightDropNotify {
            m.inflight_done.notify_all();
        }
    }
    value
}
