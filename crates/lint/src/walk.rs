//! Workspace walker: finds every `.rs` file the invariant rules apply to
//! and runs [`crate::rules::lint_source`] over it.
//!
//! Scope (documented in DESIGN.md §13): crate sources (`crates/*/src`,
//! the facade `src/`) are linted in full. Directories named `target`,
//! `vendor` (offline stand-ins for third-party crates — not this
//! project's code), `tests`, `benches`, and `examples` are skipped:
//! integration tests and examples are test/demo code by construction,
//! which the in-file `#[cfg(test)]` tracking already exempts for unit
//! tests. Hidden directories (`.git`, `.github`) are skipped too.

use crate::rules::{Diagnostic, lint_source};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names excluded from the walk (any depth).
pub const SKIPPED_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "examples"];

/// Collects every lintable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic diagnostics.
pub fn lintable_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIPPED_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            files.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Diagnostics come back
/// sorted by (path, line) — stable output for CI logs and the self-test.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for rel in lintable_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        out.extend(lint_source(&rel, &source));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}
