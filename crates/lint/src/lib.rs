//! `divtopk-lint` — in-repo static analysis for the divtopk workspace.
//!
//! Two halves (DESIGN.md §13):
//!
//! 1. **The invariant linter** ([`rules`], [`scan`], [`walk`]): a
//!    dependency-free lexer/line-scanner that walks every production
//!    `.rs` file and enforces the project's concurrency and determinism
//!    invariants as typed, `file:line`-addressed diagnostics — the prose
//!    soundness arguments of DESIGN.md §8–§11, machine-checked so they
//!    survive refactors.
//! 2. **The interleaving explorer** ([`sched`], [`models`]): a
//!    loom-style deterministic scheduler that shims `Mutex`, `Condvar`,
//!    and the atomics, and exhaustively enumerates bounded thread
//!    interleavings of small models of the repo's three hand-rolled
//!    concurrency protocols — the pool's lost-wakeup handshake, the
//!    prefetch park/re-spawn protocol, and the cache's single-flight
//!    condvar loop — asserting each protocol's DESIGN.md invariant under
//!    every explored schedule.
//!
//! The `lint` binary runs both: `cargo run -p divtopk-lint --bin lint`
//! (diagnostics, exit 1 on any), `-- --models` (the three models under a
//! bounded schedule budget).

pub mod models;
pub mod rules;
pub mod scan;
pub mod sched;
pub mod walk;

pub use rules::{Diagnostic, lint_source};
pub use walk::lint_workspace;
