//! A miniature loom-style interleaving explorer: shimmed `Mutex` /
//! `Condvar` / atomics driven by a deterministic scheduler that
//! enumerates bounded thread interleavings exhaustively (DESIGN.md §13).
//!
//! ## How it works
//!
//! A model is a closure that spawns [`spawn`]ed threads and manipulates
//! shared state **only** through the shim types ([`SimMutex`],
//! [`SimCondvar`], [`SimAtomicBool`], [`SimAtomicUsize`]). Each shim
//! operation is a *yield point*: the running thread hands control back
//! to the scheduler, which picks which thread performs its next
//! operation. Exactly one model thread runs between yield points, so an
//! execution is fully determined by the sequence of scheduling choices —
//! and the explorer enumerates those sequences by depth-first search,
//! replaying the model from scratch with a forced decision prefix.
//!
//! Real OS threads carry the model (so borrowing, guards, and unwinding
//! behave exactly as in production code), but the scheduler's handshake
//! means they never actually run concurrently; every cross-thread
//! transition goes through one `Mutex`+`Condvar`, which also provides
//! the happens-before edges making the shims' `UnsafeCell` sound.
//!
//! ## Schedule bounding
//!
//! Exhaustive enumeration of all interleavings is exponential, so the
//! explorer bounds the search the CHESS way, by **preemption count**: a
//! context switch away from a thread that could have kept running is a
//! preemption, and schedules with more than
//! [`Explorer::max_preemptions`] of them are not explored. (Switches at
//! a block, a park, or an exit are forced and always free.) Most real
//! concurrency bugs — including every lost-wakeup variant the models in
//! [`crate::models`] guard — need only one or two preemptions, so a
//! small bound buys systematic coverage of the interesting schedules at
//! a tiny fraction of the full space. A `max_schedules` budget caps the
//! run regardless, and a per-schedule step budget converts accidental
//! livelock into a typed failure.
//!
//! ## What a failure looks like
//!
//! [`Explorer::explore`] returns the failing decision sequence — a
//! replayable witness — plus the kind: [`FailureKind::Deadlock`] (no
//! runnable thread, not all finished: how a lost wakeup manifests),
//! [`FailureKind::ModelPanic`] (a model assertion fired under some
//! schedule), or the step/replay guards.
//!
//! The shims execute atomics under sequential consistency: the explorer
//! checks *protocol logic* (who waits, who wakes, who holds what), not
//! weak-memory reorderings — the right level for the repo's
//! `Mutex`/`Condvar`-based protocols, whose atomics are all loads and
//! stores of monotone flags re-checked under locks.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, LockResult, Mutex};

/// Ignore-poisoning lock helper, local so the lint crate stays
/// dependency-free (same policy as `divtopk_core::sync`): a poisoning
/// panic is either a model assertion (captured separately) or the abort
/// sentinel, and in both cases the controller state is still consistent.
fn unpoisoned<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Panic payload used to unwind managed threads at teardown.
struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Can be scheduled: will run to its next yield point when picked.
    Ready,
    /// Waiting on a shim primitive; some other thread must ready it.
    Blocked,
    Done,
}

struct SchedState {
    threads: Vec<TState>,
    /// Which managed thread may run right now; `None` = control is with
    /// the scheduler.
    current: Option<usize>,
    /// Threads waiting in `join()` on each thread, readied when it ends.
    joiners: Vec<Vec<usize>>,
    abort: bool,
    /// First model panic message of the execution, if any.
    panic_msg: Option<String>,
}

struct Control {
    state: Mutex<SchedState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// (controller, my thread id) for the managed thread running here.
    static CTX: RefCell<Option<(Arc<Control>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Control>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("sim primitives may only be used inside Explorer::explore")
    })
}

/// Waits until the scheduler hands this thread the turn. Panics with the
/// abort sentinel at teardown (guard released first — no poisoning).
fn wait_for_turn(control: &Control, me: usize) {
    let mut s = unpoisoned(control.state.lock());
    loop {
        if s.abort {
            drop(s);
            std::panic::panic_any(Abort);
        }
        if s.current == Some(me) {
            return;
        }
        s = unpoisoned(control.cv.wait(s));
    }
}

/// The universal yield point: hand control back, wait to be rescheduled.
fn yield_now() {
    let (control, me) = ctx();
    {
        let mut s = unpoisoned(control.state.lock());
        s.current = None;
    }
    control.cv.notify_all();
    wait_for_turn(&control, me);
}

/// Transition to `Blocked` and hand control back. The caller must have
/// arranged for some other thread to ready this one eventually.
fn block_self() {
    let (control, me) = ctx();
    {
        let mut s = unpoisoned(control.state.lock());
        s.threads[me] = TState::Blocked;
        s.current = None;
    }
    control.cv.notify_all();
    wait_for_turn(&control, me);
}

/// Marks `who` runnable again (no-op unless currently blocked).
fn ready(control: &Control, who: usize) {
    let mut s = unpoisoned(control.state.lock());
    if s.threads[who] == TState::Blocked {
        s.threads[who] = TState::Ready;
    }
}

/// Spawns a managed model thread. Must be called from inside a model.
/// The spawn itself is a yield point; the new thread starts `Ready` and
/// runs only when the scheduler picks it.
pub fn spawn<F>(f: F) -> SimJoinHandle
where
    F: FnOnce() + Send + 'static,
{
    yield_now();
    let (control, _) = ctx();
    let tid = {
        let mut s = unpoisoned(control.state.lock());
        s.threads.push(TState::Ready);
        s.joiners.push(Vec::new());
        s.threads.len() - 1
    };
    let thread_control = Arc::clone(&control);
    let handle = std::thread::Builder::new()
        .name(format!("divtopk-sim-{tid}"))
        .spawn(move || thread_main(thread_control, tid, f))
        // LINT-ALLOW is not needed here (lint crate is not a serving
        // module), but the same policy applies: spawn failure is fatal.
        .expect("spawn sim thread");
    unpoisoned(control.handles.lock()).push(handle);
    SimJoinHandle { tid }
}

/// Body wrapper for every managed thread (thread 0 included).
fn thread_main<F: FnOnce()>(control: Arc<Control>, me: usize, f: F) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&control), me)));
    wait_for_turn(&control, me);
    let result = catch_unwind(AssertUnwindSafe(f));
    let mut s = unpoisoned(control.state.lock());
    if let Err(payload) = result {
        if !payload.is::<Abort>() {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|m| (*m).to_owned()))
                .unwrap_or_else(|| "model panicked with a non-string payload".to_owned());
            s.panic_msg.get_or_insert(message);
        }
    }
    s.threads[me] = TState::Done;
    let joiners = std::mem::take(&mut s.joiners[me]);
    for j in joiners {
        if s.threads[j] == TState::Blocked {
            s.threads[j] = TState::Ready;
        }
    }
    s.current = None;
    drop(s);
    control.cv.notify_all();
}

/// Handle returned by [`spawn`]; joining is itself a yield point.
pub struct SimJoinHandle {
    tid: usize,
}

impl SimJoinHandle {
    /// Blocks (in the simulated sense) until the spawned thread ends.
    pub fn join(self) {
        yield_now();
        let (control, me) = ctx();
        {
            let mut s = unpoisoned(control.state.lock());
            if s.threads[self.tid] == TState::Done {
                return;
            }
            s.joiners[self.tid].push(me);
            s.threads[me] = TState::Blocked;
            s.current = None;
        }
        control.cv.notify_all();
        wait_for_turn(&control, me);
    }
}

// ---------------------------------------------------------------------
// Shim primitives
// ---------------------------------------------------------------------

struct MutexInner {
    locked: bool,
    waiters: Vec<usize>,
}

/// The shimmed mutex. Lock acquisition is a yield point; contention
/// blocks the simulated thread until the holder unlocks.
pub struct SimMutex<T> {
    sync: Mutex<MutexInner>,
    data: UnsafeCell<T>,
}

// SAFETY: exactly one managed thread executes between yield points, and
// the data is only reachable through a held guard; every cross-thread
// handoff goes through the controller's real Mutex/Condvar, which
// provides the necessary happens-before edges. This is the same
// contract as `std::sync::Mutex<T>: Sync where T: Send`.
unsafe impl<T: Send> Sync for SimMutex<T> {}
// SAFETY: sending the container only moves ownership of T (as for std).
unsafe impl<T: Send> Send for SimMutex<T> {}

impl<T> SimMutex<T> {
    pub fn new(value: T) -> SimMutex<T> {
        SimMutex {
            sync: Mutex::new(MutexInner {
                locked: false,
                waiters: Vec::new(),
            }),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the simulated lock (yield point; blocks on contention).
    pub fn lock(&self) -> SimMutexGuard<'_, T> {
        loop {
            yield_now();
            let mut inner = unpoisoned(self.sync.lock());
            if !inner.locked {
                inner.locked = true;
                return SimMutexGuard { mutex: self };
            }
            let (_, me) = ctx();
            inner.waiters.push(me);
            drop(inner);
            block_self();
            // Readied by the unlocker; loop and race to re-acquire.
        }
    }

    /// Releases the lock and readies every waiter (they race to
    /// re-acquire under the scheduler's choices). Not a yield point —
    /// called from guard drop, which must work mid-unwind.
    fn unlock(&self) {
        let waiters = {
            let mut inner = unpoisoned(self.sync.lock());
            inner.locked = false;
            std::mem::take(&mut inner.waiters)
        };
        if waiters.is_empty() {
            return;
        }
        let (control, _) = ctx();
        for w in waiters {
            ready(&control, w);
        }
    }
}

/// RAII guard for [`SimMutex`]; releases on drop like the real one.
pub struct SimMutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
}

impl<T> std::ops::Deref for SimMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves this simulated thread holds the lock,
        // and only one managed thread runs at a time (see the Sync impl).
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for SimMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for `deref`, plus `&mut self` makes aliasing
        // impossible through this guard.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

/// The shimmed condvar. `wait` models the real atomic
/// release-and-sleep: registering as a waiter, releasing the mutex, and
/// blocking happen with no scheduling point in between — but there *is*
/// a yield point on entry, which is exactly the window a lost-wakeup
/// bug needs (the instant between the caller's last predicate check and
/// the wait).
pub struct SimCondvar {
    waiters: Mutex<VecDeque<usize>>,
}

impl Default for SimCondvar {
    fn default() -> SimCondvar {
        SimCondvar::new()
    }
}

impl SimCondvar {
    pub fn new() -> SimCondvar {
        SimCondvar {
            waiters: Mutex::new(VecDeque::new()),
        }
    }

    /// Releases `guard`'s mutex and sleeps until notified, then
    /// re-acquires. No spurious wakeups (the explorer wants minimal
    /// nondeterminism; real callers must loop anyway).
    pub fn wait<'a, T>(&self, guard: SimMutexGuard<'a, T>) -> SimMutexGuard<'a, T> {
        yield_now();
        let mutex = guard.mutex;
        let (_, me) = ctx();
        unpoisoned(self.waiters.lock()).push_back(me);
        // Atomic w.r.t. the schedule: between here and `block_self` no
        // other model thread can run, so a notify either precedes the
        // registration (and this thread never sleeps on it) or follows
        // it (and wakes it) — never in between.
        drop(guard);
        block_self();
        mutex.lock()
    }

    /// Wakes the longest-waiting thread, if any (FIFO — deterministic;
    /// the scheduler's choices still explore wake orderings).
    pub fn notify_one(&self) {
        yield_now();
        let woken = unpoisoned(self.waiters.lock()).pop_front();
        if let Some(w) = woken {
            let (control, _) = ctx();
            ready(&control, w);
        }
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        yield_now();
        let woken: Vec<usize> = unpoisoned(self.waiters.lock()).drain(..).collect();
        let (control, _) = ctx();
        for w in woken {
            ready(&control, w);
        }
    }
}

macro_rules! sim_atomic {
    ($name:ident, $std:ty, $value:ty) => {
        /// Shimmed atomic: every operation is a yield point; the value
        /// itself is sequentially consistent (see the module docs for
        /// why that is the right model here). The `Ordering` argument is
        /// accepted for signature fidelity with the real type.
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub fn new(value: $value) -> $name {
                $name {
                    inner: <$std>::new(value),
                }
            }

            pub fn load(&self, _order: Ordering) -> $value {
                yield_now();
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, value: $value, _order: Ordering) {
                yield_now();
                self.inner.store(value, Ordering::SeqCst);
            }

            pub fn swap(&self, value: $value, _order: Ordering) -> $value {
                yield_now();
                self.inner.swap(value, Ordering::SeqCst)
            }
        }
    };
}

sim_atomic!(SimAtomicBool, std::sync::atomic::AtomicBool, bool);
sim_atomic!(SimAtomicUsize, std::sync::atomic::AtomicUsize, usize);

impl SimAtomicUsize {
    pub fn fetch_add(&self, value: usize, _order: Ordering) -> usize {
        yield_now();
        self.inner.fetch_add(value, Ordering::SeqCst)
    }

    pub fn fetch_sub(&self, value: usize, _order: Ordering) -> usize {
        yield_now();
        self.inner.fetch_sub(value, Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// Exploration bounds. See the module docs for the strategy.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Stop after this many schedules even if the bounded space is not
    /// exhausted (the CI budget knob).
    pub max_schedules: usize,
    /// CHESS-style preemption bound per schedule.
    pub max_preemptions: usize,
    /// Per-schedule step guard: exceeding it is a typed failure (a
    /// livelocked model, not an explorer hang).
    pub max_steps: usize,
}

impl Default for Explorer {
    /// Two preemptions, a 4096-schedule budget, 10k steps per schedule.
    fn default() -> Explorer {
        Explorer {
            max_schedules: 4096,
            max_preemptions: 2,
            max_steps: 10_000,
        }
    }
}

/// A successful exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// True when the preemption-bounded space was fully enumerated
    /// (false = the `max_schedules` budget cut the search short).
    pub exhausted: bool,
    /// Deepest decision sequence seen.
    pub max_decisions: usize,
    /// FNV-1a hash over every decision sequence explored — two runs of
    /// the same model must produce the same fingerprint (the
    /// determinism the acceptance tests pin).
    pub fingerprint: u64,
}

/// Why a model failed, plus the replayable witness schedule.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// The decision sequence of the failing execution.
    pub schedule: Vec<usize>,
    /// Schedules fully explored before this one failed.
    pub schedules_before: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread but not all threads finished — how a lost
    /// wakeup (or any missing-notify protocol bug) manifests.
    Deadlock { blocked: usize, finished: usize },
    /// A model assertion panicked under this schedule.
    ModelPanic { message: String },
    /// The per-schedule step budget was exceeded (livelock guard).
    StepBudget,
    /// Replay diverged — the model has nondeterminism outside the shims
    /// (a model bug, not a protocol bug).
    ReplayDiverged,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Deadlock { blocked, finished } => write!(
                f,
                "deadlock: no runnable thread ({blocked} blocked, {finished} finished)"
            ),
            FailureKind::ModelPanic { message } => write!(f, "model panic: {message}"),
            FailureKind::StepBudget => write!(f, "step budget exceeded (livelock?)"),
            FailureKind::ReplayDiverged => write!(f, "replay diverged (nondeterministic model)"),
        }
    }
}

impl Explorer {
    /// Explores the model's schedules depth-first under the configured
    /// bounds. `Ok` = every explored schedule upheld every assertion and
    /// terminated; `Err` = the first failing schedule, as a witness.
    pub fn explore<F>(&self, model: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut max_decisions = 0usize;
        let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
        loop {
            let (trace, failure) = self.run_once(&model, &prefix);
            max_decisions = max_decisions.max(trace.len());
            for &(choice, _) in &trace {
                fingerprint ^= choice as u64 + 1;
                fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
            }
            fingerprint ^= 0xff;
            fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
            if let Some(kind) = failure {
                return Err(Failure {
                    kind,
                    schedule: trace.iter().map(|&(c, _)| c).collect(),
                    schedules_before: schedules,
                });
            }
            schedules += 1;
            match next_prefix(&trace) {
                None => {
                    return Ok(Report {
                        schedules,
                        exhausted: true,
                        max_decisions,
                        fingerprint,
                    });
                }
                Some(_) if schedules >= self.max_schedules => {
                    return Ok(Report {
                        schedules,
                        exhausted: false,
                        max_decisions,
                        fingerprint,
                    });
                }
                Some(next) => prefix = next,
            }
        }
    }

    /// Runs one execution, forcing the decision `prefix` and extending
    /// it first-choice beyond. Returns the full decision trace as
    /// `(choice, options)` pairs plus the failure, if any.
    fn run_once<F>(
        &self,
        model: &Arc<F>,
        prefix: &[usize],
    ) -> (Vec<(usize, usize)>, Option<FailureKind>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let control = Arc::new(Control {
            state: Mutex::new(SchedState {
                threads: vec![TState::Ready],
                current: None,
                joiners: vec![Vec::new()],
                abort: false,
                panic_msg: None,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        });
        {
            let thread_control = Arc::clone(&control);
            let model = Arc::clone(model);
            let handle = std::thread::Builder::new()
                .name("divtopk-sim-0".to_owned())
                .spawn(move || thread_main(thread_control, 0, move || model()))
                .expect("spawn sim thread 0");
            unpoisoned(control.handles.lock()).push(handle);
        }
        let mut trace: Vec<(usize, usize)> = Vec::new();
        let mut preemptions = 0usize;
        let mut last_run: Option<usize> = None;
        let mut steps = 0usize;
        let failure = loop {
            let mut s = unpoisoned(control.state.lock());
            while s.current.is_some() {
                s = unpoisoned(control.cv.wait(s));
            }
            if let Some(message) = s.panic_msg.take() {
                break Some(FailureKind::ModelPanic { message });
            }
            let runnable: Vec<usize> = s
                .threads
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t == TState::Ready)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let blocked = s.threads.iter().filter(|&&t| t == TState::Blocked).count();
                if blocked == 0 {
                    break None; // all Done: clean completion
                }
                let finished = s.threads.iter().filter(|&&t| t == TState::Done).count();
                break Some(FailureKind::Deadlock { blocked, finished });
            }
            steps += 1;
            if steps > self.max_steps {
                break Some(FailureKind::StepBudget);
            }
            // Preemption bounding: if the last-run thread could continue
            // and the budget is spent, it is the only option.
            let prev_runnable = last_run.is_some_and(|p| s.threads[p] == TState::Ready);
            let options: Vec<usize> = if prev_runnable && preemptions >= self.max_preemptions {
                vec![last_run.unwrap_or(0)]
            } else {
                runnable
            };
            let choice = prefix.get(trace.len()).copied().unwrap_or(0);
            if choice >= options.len() {
                break Some(FailureKind::ReplayDiverged);
            }
            trace.push((choice, options.len()));
            let chosen = options[choice];
            if prev_runnable && Some(chosen) != last_run {
                preemptions += 1;
            }
            s.current = Some(chosen);
            last_run = Some(chosen);
            drop(s);
            control.cv.notify_all();
        };
        // Teardown: unwind every still-parked thread, then join all.
        {
            let mut s = unpoisoned(control.state.lock());
            s.abort = true;
            s.current = None;
        }
        control.cv.notify_all();
        let handles = std::mem::take(&mut *unpoisoned(control.handles.lock()));
        for handle in handles {
            let _ = handle.join();
        }
        (trace, failure)
    }
}

/// DFS successor: the next forced prefix, or `None` when the bounded
/// space is exhausted. Backtracks the deepest decision with an
/// untried alternative.
fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut depth = trace.len();
    while depth > 0 {
        let (choice, options) = trace[depth - 1];
        if choice + 1 < options {
            let mut prefix: Vec<usize> = trace[..depth].iter().map(|&(c, _)| c).collect();
            prefix[depth - 1] += 1;
            return Some(prefix);
        }
        depth -= 1;
    }
    None
}

/// Convenience used by models: a shared cell readable after `explore`
/// would be per-execution state, so models assert *inside* the model
/// (thread 0, after joins) instead. This helper makes the common
/// "count events, assert at end" shape explicit.
pub struct SimCounter {
    inner: SimAtomicUsize,
}

impl Default for SimCounter {
    fn default() -> SimCounter {
        SimCounter::new()
    }
}

impl SimCounter {
    pub fn new() -> SimCounter {
        SimCounter {
            inner: SimAtomicUsize::new(0),
        }
    }

    /// Increments; returns the previous value.
    pub fn bump(&self) -> usize {
        self.inner.fetch_add(1, Ordering::SeqCst)
    }

    /// Decrements; returns the previous value.
    pub fn decrement(&self) -> usize {
        self.inner.fetch_sub(1, Ordering::SeqCst)
    }

    pub fn get(&self) -> usize {
        self.inner.load(Ordering::SeqCst)
    }
}
