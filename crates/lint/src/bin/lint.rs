//! `divtopk-lint` CLI: the invariant checker and the interleaving models
//! as one binary, wired into CI's `lint-invariants` job.
//!
//! ```text
//! lint                      # lint the workspace at the current dir
//! lint --root PATH          # lint the workspace at PATH
//! lint --models             # run the three interleaving models instead
//! lint --models --budget N  # ... with a schedule budget of N per model
//! ```
//!
//! Exit status: 0 when clean, 1 on any diagnostic / model failure /
//! under-explored model, 2 on usage or I/O errors.

use divtopk_lint::models::{self, Bug};
use divtopk_lint::sched::{Explorer, Failure, Report};
use divtopk_lint::walk::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

/// Every model must clear this many schedules for a `--models` run to
/// count as meaningful coverage (the acceptance floor).
const MIN_SCHEDULES: usize = 1000;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut run_models = false;
    let mut budget = 4096usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(path) = args.next() else {
                    eprintln!("lint: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(path);
            }
            "--models" => run_models = true,
            "--budget" => {
                let parsed = args.next().and_then(|v| v.parse::<usize>().ok());
                let Some(value) = parsed else {
                    eprintln!("lint: --budget requires a positive integer");
                    return ExitCode::from(2);
                };
                budget = value;
            }
            "--help" | "-h" => {
                println!("usage: lint [--root PATH] [--models] [--budget N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if run_models {
        run_interleaving_models(budget)
    } else {
        run_linter(&root)
    }
}

fn run_linter(root: &std::path::Path) -> ExitCode {
    let diagnostics = match lint_workspace(root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if diagnostics.is_empty() {
        println!("lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for d in &diagnostics {
        println!("{d}");
    }
    println!("lint: {} violation(s)", diagnostics.len());
    ExitCode::FAILURE
}

fn run_interleaving_models(budget: usize) -> ExitCode {
    let explorer = Explorer {
        max_schedules: budget,
        ..Explorer::default()
    };
    // The prefetch protocol's interesting schedules (park → pop →
    // re-spawn races) need more context switches than the other two; a
    // deeper preemption bound keeps its bounded space both meaningful
    // and exhaustible (see DESIGN.md §13).
    let deep = Explorer {
        max_preemptions: 4,
        ..explorer
    };
    type ModelRun = Box<dyn Fn() -> Result<Report, Failure>>;
    let runs: [(&str, ModelRun); 3] = [
        (
            "pool-handshake",
            Box::new(move || models::pool_handshake(&explorer, 2, 2, Bug::None)),
        ),
        (
            "prefetch-pump",
            Box::new(move || models::prefetch_pump(&deep, 1, 4, Bug::None)),
        ),
        (
            "single-flight",
            Box::new(move || models::single_flight(&explorer, 3, Bug::None)),
        ),
    ];
    let mut failed = false;
    for (name, run) in runs {
        match run() {
            Ok(report) => {
                let coverage = if report.exhausted {
                    "exhausted"
                } else {
                    "budget-capped"
                };
                println!(
                    "model {name}: ok — {} schedules ({coverage}), max depth {}, fingerprint {:016x}",
                    report.schedules, report.max_decisions, report.fingerprint
                );
                if report.schedules < MIN_SCHEDULES {
                    println!(
                        "model {name}: FAIL — only {} schedules explored (< {MIN_SCHEDULES})",
                        report.schedules
                    );
                    failed = true;
                }
            }
            Err(failure) => {
                println!(
                    "model {name}: FAIL — {} after {} clean schedules; witness {:?}",
                    failure.kind, failure.schedules_before, failure.schedule
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
