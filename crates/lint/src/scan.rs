//! A hand-written Rust line scanner — the lexical substrate the rules in
//! [`crate::rules`] run on. Same spirit as the in-repo JSON parser from
//! PR 2: a small, dependency-free, fully-owned piece of the trusted base
//! instead of an external parser the linter would then have to trust.
//!
//! The scanner does **not** parse Rust. It performs exactly the lexical
//! separation the rules need and nothing more:
//!
//! * **masking** — string literals (plain, raw, byte, C), char literals,
//!   and comments are replaced by spaces in the per-line `code` text, so a
//!   rule that greps `code` for `unwrap()` can never fire on a doc
//!   sentence or an error message;
//! * **comment capture** — the text of every comment is kept per line, so
//!   annotation rules (`LINT-ALLOW`, `SAFETY:`, `RELAXED:`) can look it up
//!   without re-lexing;
//! * **test-region tracking** — any item under a `#[cfg(test)]` attribute
//!   (in this repo: the conventional `mod tests`) is brace-matched and its
//!   lines flagged `in_test`, so production-only rules skip unit tests
//!   without path heuristics.
//!
//! Lifetimes (`'scope`) are distinguished from char literals (`'s'`) by
//! one character of lookahead, and block comments nest, as in real Rust.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with every literal and comment blanked to spaces.
    /// Column positions are preserved (the mask is length-preserving), so
    /// byte offsets into `code` are byte offsets into the original line.
    pub code: String,
    /// Concatenated text of every comment (or comment fragment) on the
    /// line, `//` / `/*` / `*/` delimiters stripped.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole file, scanned. Lines are 0-indexed here; diagnostics add 1.
#[derive(Debug)]
pub struct ScannedFile {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside `"..."`.
    Str,
    /// Inside `r##"..."##` with the given `#` count.
    RawStr(u32),
}

/// Scans `source` into masked lines with captured comments and test
/// regions. Never fails: unterminated constructs simply mask to the end
/// of the file (rustc will reject the file anyway; the linter's job is
/// only to not mis-fire on it).
pub fn scan(source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let (line, next) = scan_line(raw, mode);
        mode = next;
        lines.push(line);
    }
    mark_test_regions(&mut lines);
    ScannedFile { lines }
}

/// Scans one line starting in `mode`; returns the scanned line and the
/// mode the next line starts in.
fn scan_line(raw: &str, mut mode: Mode) -> (Line, Mode) {
    let bytes = raw.as_bytes();
    let mut code = vec![b' '; bytes.len()];
    let mut comment = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match mode {
            Mode::Block(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    i += 2;
                    mode = if depth > 1 {
                        Mode::Block(depth - 1)
                    } else {
                        Mode::Code
                    };
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    i += 2;
                    mode = Mode::Block(depth + 1);
                } else {
                    comment.push(raw[i..].chars().next().unwrap_or(' '));
                    i += raw[i..].chars().next().map_or(1, char::len_utf8);
                }
            }
            Mode::Str => {
                if bytes[i] == b'\\' {
                    i += 2; // escape: skip the escaped byte too
                } else if bytes[i] == b'"' {
                    i += 1;
                    mode = Mode::Code;
                } else {
                    i += raw[i..].chars().next().map_or(1, char::len_utf8);
                }
            }
            Mode::RawStr(hashes) => {
                if bytes[i] == b'"'
                    && raw[i + 1..]
                        .bytes()
                        .take(hashes as usize)
                        .eq(std::iter::repeat_n(b'#', hashes as usize))
                {
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    i += raw[i..].chars().next().map_or(1, char::len_utf8);
                }
            }
            Mode::Code => {
                let b = bytes[i];
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        // Line comment: capture the rest, stop lexing.
                        let text = raw[i + 2..].trim_start_matches(['/', '!']);
                        comment.push_str(text);
                        i = bytes.len();
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        i += 2;
                        mode = Mode::Block(1);
                    }
                    b'"' => {
                        i += 1;
                        mode = Mode::Str;
                    }
                    b'r' | b'b' | b'c' if is_raw_or_literal_prefix(bytes, i) => {
                        // One of r"..", r#"..", b"..", br#"..", c"..:
                        // consume the prefix, classify what follows.
                        let start = i;
                        while i < bytes.len()
                            && matches!(bytes[i], b'r' | b'b' | b'c')
                            && i - start < 2
                        {
                            i += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(i) == Some(&b'#') {
                            hashes += 1;
                            i += 1;
                        }
                        if bytes.get(i) == Some(&b'"') {
                            i += 1;
                            mode = if hashes > 0 || raw[start..i].contains('r') {
                                Mode::RawStr(hashes)
                            } else {
                                Mode::Str
                            };
                        } else {
                            // Not a literal after all (e.g. `r#type` raw
                            // ident, or plain identifiers): keep as code.
                            let end = i.min(bytes.len());
                            code[start..end].copy_from_slice(&bytes[start..end]);
                        }
                    }
                    b'\'' => {
                        // Char literal vs lifetime: `'x'` / `'\n'` are
                        // literals, `'scope` is a lifetime label.
                        if bytes.get(i + 1) == Some(&b'\\') {
                            // Escaped char literal: skip to closing quote.
                            i += 2;
                            while i < bytes.len() && bytes[i] != b'\'' {
                                i += 1;
                            }
                            i += 1;
                        } else {
                            let next_len = raw[i + 1..].chars().next().map_or(1, char::len_utf8);
                            if bytes.get(i + 1 + next_len) == Some(&b'\'') {
                                i += 2 + next_len; // 'x'
                            } else {
                                code[i] = b; // lifetime: keep the tick
                                i += 1;
                            }
                        }
                    }
                    _ => {
                        let len = raw[i..].chars().next().map_or(1, char::len_utf8);
                        let end = (i + len).min(bytes.len());
                        code[i..end].copy_from_slice(&bytes[i..end]);
                        i += len;
                    }
                }
            }
        }
    }
    let code = String::from_utf8_lossy(&code).into_owned();
    // Strings, raw strings, and block comments carry over to the next
    // line (multi-line constructs); line comments ended with the line.
    (
        Line {
            code,
            comment,
            in_test: false,
        },
        mode,
    )
}

/// Is the `r`/`b`/`c` at `i` the start of a (raw/byte/C) string literal,
/// and not just the first letter of an identifier like `result`?
fn is_raw_or_literal_prefix(bytes: &[u8], i: usize) -> bool {
    // Previous char must not be part of an identifier.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    // Look ahead past at most two prefix letters and any `#`s for a
    // quote. `r#ident` (raw identifier) has hashes but no quote, so the
    // quote requirement rejects it; hashes without an `r` in the prefix
    // (not valid Rust) are rejected too.
    let mut j = i;
    let mut saw_r = false;
    while j < bytes.len() && matches!(bytes[j], b'r' | b'b' | b'c') && j - i < 2 {
        saw_r |= bytes[j] == b'r';
        j += 1;
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    bytes.get(j) == Some(&b'"') && (hashes == 0 || saw_r)
}

/// Flags every line inside a `#[cfg(test)]` item by brace-matching the
/// item that follows the attribute.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the attributed item, then match.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for b in lines[j].code.bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked_out() {
        let f = scan("let x = \"unwrap() inside\"; // unwrap() in comment\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("unwrap() in comment"));
        assert!(f.lines[0].code.contains("let x ="));
    }

    #[test]
    fn raw_strings_and_escapes_mask() {
        let f = scan("let a = r#\"panic! \"quoted\" \"#; let b = \"\\\"panic!\\\"\"; b;\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("let b ="));
    }

    #[test]
    fn multiline_strings_and_block_comments_carry_over() {
        let src = "let s = \"line one\nstill a string unwrap()\";\n/* block\nstill comment unwrap() */ code();\n";
        let f = scan(src);
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(!f.lines[3].code.contains("unwrap"));
        assert!(f.lines[3].code.contains("code()"));
        assert!(f.lines[3].comment.contains("still comment"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("/* outer /* inner */ still outer unwrap() */ after();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("after()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; g(x) }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("fn f<'a>"), "lifetime kept: {code}");
        assert!(!code.contains("'x'"), "char literal masked: {code}");
        assert!(code.contains("g(x)"));
    }

    #[test]
    fn cfg_test_regions_are_flagged() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(
            f.lines[1].in_test && f.lines[2].in_test && f.lines[3].in_test && f.lines[4].in_test
        );
        assert!(!f.lines[5].in_test);
    }
}
