//! The project invariants, enforced as typed, file:line-addressed
//! diagnostics over [`crate::scan`]ned source (DESIGN.md §13).
//!
//! | rule key     | invariant                                                        |
//! |--------------|------------------------------------------------------------------|
//! | `panic`      | no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/        |
//! |              | `unimplemented!` in serving-path modules                          |
//! | `safety`     | every `unsafe` block is preceded by a `// SAFETY:` comment        |
//! | `ordering`   | every atomic load/store/RMW names an explicit `Ordering`          |
//! | `relaxed`    | every `Ordering::Relaxed` carries a `// RELAXED:` justification   |
//! | `wallclock`  | no `Instant::now`/`SystemTime::now` in deterministic modules      |
//! | `float-eq`   | no direct `f64`/`f32` `==`/`!=` comparisons outside test code     |
//!
//! Annotation grammar (also §13):
//!
//! * `// LINT-ALLOW(panic): some reason` — suppresses `panic`, `wallclock`,
//!   or `float-eq` on the same line, or (as the conventional placement)
//!   anywhere in the contiguous comment block directly above the line.
//!   The reason is mandatory; an empty reason is itself a diagnostic.
//! * `// SAFETY: <why this is sound>` — same placement as `LINT-ALLOW`;
//!   discharges `safety`.
//! * `// RELAXED: <why no ordering is needed>` — covers every
//!   `Ordering::Relaxed` on its own line and the following
//!   [`RELAXED_WINDOW`] lines, so one justification can cover a cluster
//!   of counter operations.
//!
//! The scanner is lexical, not semantic: `ordering` and `float-eq` use
//! documented heuristics (see [`AMBIGUOUS_ATOMIC_METHODS`] and the
//! `float_operand` check) chosen so they are exact on this codebase's idiom.

use crate::scan::{ScannedFile, scan};

/// How many lines below a `// RELAXED:` comment it still covers.
pub const RELAXED_WINDOW: usize = 10;

/// Modules on the serving path: a panic here is an availability bug, so
/// the panic family is banned outside explicit annotated allowances
/// (DESIGN.md §13). Matched as path suffixes against `/`-normalized
/// workspace-relative paths.
pub const SERVING_MODULES: &[&str] = &[
    "crates/engine/src/server.rs",
    "crates/engine/src/proto.rs",
    "crates/engine/src/engine.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/prefetch.rs",
    "crates/core/src/diversify.rs",
    "crates/text/src/mode.rs",
    "crates/text/src/persist.rs",
];

/// Modules whose outputs must be bit-reproducible from their seeds: any
/// wall-clock read here is a determinism bug waiting for a refactor.
pub const DETERMINISTIC_MODULES: &[&str] = &[
    "crates/bench/src/workload.rs",
    "crates/bench/src/quality.rs",
    "crates/core/src/testgen.rs",
    "crates/core/src/rng.rs",
];

/// Atomic RMW methods that are unambiguous — no other std type has them,
/// so they are checked in every file.
pub const UNAMBIGUOUS_ATOMIC_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Methods that exist on non-atomic types too (`Vec::swap`,
/// `Iterator::... load`-alikes): only checked in files that import
/// `std::sync::atomic`, which is where a bare call is plausibly atomic.
pub const AMBIGUOUS_ATOMIC_METHODS: &[&str] = &["load", "store", "swap"];

/// One finding: a file:line-addressed, rule-typed diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule key (`panic`, `safety`, `ordering`, `relaxed`,
    /// `wallclock`, `float-eq`, `annotation`).
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source text under its workspace-relative path.
/// This is the whole linter; the binary and the workspace walker are
/// just loops around it.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let file = scan(source);
    let mut out = Vec::new();
    check_annotations(path, &file, &mut out);
    if SERVING_MODULES.iter().any(|m| path.ends_with(m)) {
        check_panics(path, &file, &mut out);
    }
    check_unsafe(path, &file, &mut out);
    check_atomics(path, source, &file, &mut out);
    if DETERMINISTIC_MODULES.iter().any(|m| path.ends_with(m)) {
        check_wallclock(path, &file, &mut out);
    }
    check_float_eq(path, &file, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// True if `code[at..]` starts with `word` at an identifier boundary on
/// both sides.
fn word_at(code: &str, at: usize, word: &str) -> bool {
    if !code[at..].starts_with(word) {
        return false;
    }
    let before_ok = at == 0
        || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
    let after = at + word.len();
    let after_ok = after >= code.len()
        || !code.as_bytes()[after].is_ascii_alphanumeric() && code.as_bytes()[after] != b'_';
    before_ok && after_ok
}

/// All identifier-boundary occurrences of `word` in `code`.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut positions = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        if word_at(code, at, word) {
            positions.push(at);
        }
        from = at + word.len();
    }
    positions
}

/// Does the contiguous comment block directly above `line` (or the line
/// itself) contain `token`? "Contiguous" means the scan walks upward over
/// lines with no code (comments, blanks, masked literals) and stops at
/// the first line carrying code.
fn annotated_above(file: &ScannedFile, line: usize, token: &str) -> bool {
    if file.lines[line].comment.contains(token) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        if l.comment.contains(token) {
            return true;
        }
        if !l.code.trim().is_empty() {
            return false;
        }
    }
    false
}

/// Walks from `line` up to the first line of the statement it belongs
/// to: while the previous code line visibly continues into this one
/// (ends with `=`, an opening delimiter, an operator, or a dot-chain),
/// the statement started earlier. A heuristic, but a conservative one —
/// it only ever *widens* where an annotation may sit.
fn statement_anchor(file: &ScannedFile, line: usize) -> usize {
    let mut i = line;
    while i > 0 {
        let prev = file.lines[i - 1].code.trim_end();
        let cur = file.lines[i].code.trim_start();
        // Continuation either way round: the previous line visibly dangles
        // (`let x =`), or this line visibly chains (`.expect(..)`).
        let continues = ["=", "(", "[", ",", "+", "&&", "||", "->", "."]
            .iter()
            .any(|suffix| prev.ends_with(suffix))
            || cur.starts_with('.')
            || cur.starts_with('?');
        if !continues {
            return i;
        }
        i -= 1;
    }
    i
}

/// Is this `Ordering::Relaxed` use covered by a `// RELAXED:` comment on
/// the same line or within the preceding [`RELAXED_WINDOW`] lines?
fn relaxed_justified(file: &ScannedFile, line: usize) -> bool {
    let lo = line.saturating_sub(RELAXED_WINDOW);
    (lo..=line).any(|i| file.lines[i].comment.contains("RELAXED:"))
}

/// Per-rule suppression-comment lookup for `line`.
fn lint_allowed(file: &ScannedFile, line: usize, rule: &str) -> bool {
    annotated_above(file, line, &format!("LINT-ALLOW({rule}):"))
}

/// Rule `annotation`: every `LINT-ALLOW` must name a known rule and give
/// a non-empty reason — an unexplained suppression is itself a violation.
fn check_annotations(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const KNOWN: &[&str] = &["panic", "wallclock", "float-eq"];
    for (idx, l) in file.lines.iter().enumerate() {
        let comment = &l.comment;
        let mut from = 0;
        while let Some(rel) = comment[from..].find("LINT-ALLOW") {
            let after = from + rel + "LINT-ALLOW".len();
            if !comment[after..].starts_with('(') {
                // The marker followed by a bare `rule:` is an attempted
                // annotation that forgot the parens. A prose mention (no
                // trailing `word:`) is fine; docs talk about the grammar.
                let attempted = comment[after..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .count()
                    > 0
                    && comment[after..]
                        .trim_start()
                        .trim_start_matches(|c: char| {
                            c.is_ascii_alphanumeric() || c == '-' || c == '_'
                        })
                        .starts_with(':');
                if attempted {
                    out.push(Diagnostic {
                        path: path.to_owned(),
                        line: idx + 1,
                        rule: "annotation",
                        message: "malformed LINT-ALLOW: rule must be parenthesized, \
                                  `LINT-ALLOW(<rule>): <reason>`"
                            .to_owned(),
                    });
                }
                from = after;
                continue;
            }
            let at = after + 1;
            from = at;
            let Some(close) = comment[at..].find(')') else {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "annotation",
                    message: "malformed LINT-ALLOW: missing `)`".to_owned(),
                });
                continue;
            };
            let rule = &comment[at..at + close];
            let rest = &comment[at + close + 1..];
            if !KNOWN.contains(&rule) {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "annotation",
                    message: format!(
                        "LINT-ALLOW names unknown rule `{rule}` (known: {})",
                        KNOWN.join(", ")
                    ),
                });
            }
            let reason = rest.strip_prefix(':').map(str::trim);
            if reason.is_none_or(str::is_empty) {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "annotation",
                    message: format!("LINT-ALLOW({rule}) must carry `: <reason>`"),
                });
            }
        }
    }
}

/// Rule `panic`: the panic family is banned in serving-path modules
/// outside test code, except behind `// LINT-ALLOW(panic): <reason>`.
fn check_panics(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const CALLS: &[&str] = &["unwrap", "expect"];
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let mut hits: Vec<&str> = Vec::new();
        for &call in CALLS {
            for at in word_positions(&l.code, call) {
                // Must be a call: `unwrap()` / `expect(` — this is what
                // keeps `unwrap_or_else` and friends out of scope.
                let rest = l.code[at + call.len()..].trim_start();
                let is_call = match call {
                    "unwrap" => rest.starts_with("()"),
                    _ => rest.starts_with('('),
                };
                if is_call {
                    hits.push(call);
                }
            }
        }
        for &mac in MACROS {
            for at in word_positions(&l.code, mac) {
                if l.code[at + mac.len()..].trim_start().starts_with('!') {
                    hits.push(mac);
                }
            }
        }
        for name in hits {
            // Anchor at the statement start so a chained `.expect(..)` on
            // its own line is covered by the comment above the chain.
            let anchor = statement_anchor(file, idx);
            if !lint_allowed(file, idx, "panic") && !lint_allowed(file, anchor, "panic") {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "panic",
                    message: format!(
                        "`{name}` in a serving-path module — return a typed error, use \
                         divtopk_core::sync, or justify with `// LINT-ALLOW(panic): <reason>`"
                    ),
                });
            }
        }
    }
}

/// Rule `safety`: every `unsafe` **block** (not `unsafe fn`/`unsafe
/// impl` signatures) needs a `// SAFETY:` comment directly above or on
/// the same line. Applies everywhere, test code included — soundness
/// arguments do not get weekends off.
fn check_unsafe(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for (idx, l) in file.lines.iter().enumerate() {
        for at in word_positions(&l.code, "unsafe") {
            let rest = l.code[at + "unsafe".len()..].trim_start();
            // An unsafe *block* is `unsafe {`; `unsafe fn`/`unsafe impl`/
            // `unsafe trait` declare obligations rather than discharge
            // them, and a brace-on-next-line layout still shows `unsafe`
            // at end of line (rest is empty) — treat that as a block too.
            let is_block = rest.starts_with('{') || rest.is_empty();
            // Anchor at the start of the enclosing statement: in
            // `let x: T =\n    unsafe { .. };` the SAFETY comment sits
            // above the `let`, which is where a reader looks for it.
            let anchor = statement_anchor(file, idx);
            if is_block && !annotated_above(file, anchor, "SAFETY:") {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "safety",
                    message: "`unsafe` block without a `// SAFETY:` comment explaining why \
                              every obligation holds"
                        .to_owned(),
                });
            }
        }
    }
}

/// Rules `ordering` + `relaxed` (see module docs for the heuristics).
fn check_atomics(path: &str, source: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let imports_atomics = source.contains("sync::atomic");
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let unambiguous = UNAMBIGUOUS_ATOMIC_METHODS.iter().flat_map(|m| {
            word_positions(&l.code, m)
                .into_iter()
                .map(move |at| (*m, at))
        });
        let ambiguous = AMBIGUOUS_ATOMIC_METHODS
            .iter()
            .filter(|_| imports_atomics)
            .flat_map(|m| {
                word_positions(&l.code, m)
                    .into_iter()
                    .map(move |at| (*m, at))
            });
        for (method, at) in unambiguous.chain(ambiguous) {
            // Must be a method call: `.method(`.
            let before = l.code[..at].trim_end();
            let rest = l.code[at + method.len()..].trim_start();
            if !before.ends_with('.') || !rest.starts_with('(') {
                continue;
            }
            if !call_args_contain(file, idx, at + method.len(), "Ordering::") {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "ordering",
                    message: format!(
                        "`.{method}(...)` looks atomic but names no explicit `Ordering`"
                    ),
                });
            }
        }
        for at in word_positions(&l.code, "Relaxed") {
            let is_ordering = l.code[..at].trim_end().ends_with("Ordering::");
            if is_ordering && !relaxed_justified(file, idx) {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "relaxed",
                    message: format!(
                        "`Ordering::Relaxed` without a `// RELAXED:` justification on this line \
                         or within the {RELAXED_WINDOW} lines above"
                    ),
                });
            }
        }
    }
}

/// Scans forward from the `(` at or after (`line`, `col`) to its matching
/// `)` (across lines), checking whether the argument text contains
/// `needle`. Unterminated calls (never on rustc-accepted code) scan to
/// end of file.
fn call_args_contain(file: &ScannedFile, line: usize, col: usize, needle: &str) -> bool {
    let mut depth = 0i64;
    let mut started = false;
    let mut args = String::new();
    for (idx, l) in file.lines.iter().enumerate().skip(line) {
        let code = if idx == line { &l.code[col..] } else { &l.code };
        for ch in code.chars() {
            match ch {
                '(' => {
                    depth += 1;
                    started = true;
                }
                ')' => depth -= 1,
                _ => {}
            }
            if started {
                args.push(ch);
                if depth <= 0 {
                    return args.contains(needle);
                }
            }
        }
        args.push(' ');
    }
    args.contains(needle)
}

/// Rule `wallclock`: no `Instant::now`/`SystemTime::now` in
/// deterministic modules outside test code, except behind
/// `// LINT-ALLOW(wallclock): <reason>`.
fn check_wallclock(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for pattern in ["Instant::now", "SystemTime::now"] {
            if l.code.contains(pattern) && !lint_allowed(file, idx, "wallclock") {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "wallclock",
                    message: format!(
                        "`{pattern}` in a deterministic module — outputs here must be a pure \
                         function of the seed; justify measurement-only uses with \
                         `// LINT-ALLOW(wallclock): <reason>`"
                    ),
                });
            }
        }
    }
}

/// Rule `float-eq`: `==`/`!=` where an operand is lexically a float —
/// a float literal (`0.0`, `1e-9`, `1.5f64`) or an `f64::`/`f32::`/
/// `as f64`/`as f32` expression. Type-blind by design: it catches the
/// sentinel-comparison idiom that actually appears in review, and the
/// committed annotations document the sound exceptions.
fn check_float_eq(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        let bytes = code.as_bytes();
        for at in 0..bytes.len().saturating_sub(1) {
            let two = &code[at..at + 2];
            if two != "==" && two != "!=" {
                continue;
            }
            // Reject `<=`, `>=`, `===`-like runs and pattern `=>`.
            let prev = if at == 0 { b' ' } else { bytes[at - 1] };
            if two == "==" && matches!(prev, b'=' | b'!' | b'<' | b'>') {
                continue;
            }
            if bytes.get(at + 2) == Some(&b'=') {
                continue;
            }
            let lhs = operand_text(&code[..at], false);
            let rhs = operand_text(&code[at + 2..], true);
            if (float_operand(&lhs) || float_operand(&rhs)) && !lint_allowed(file, idx, "float-eq")
            {
                out.push(Diagnostic {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "float-eq",
                    message: "direct float `==`/`!=` comparison — use an epsilon, compare \
                              `to_bits()`, or justify with `// LINT-ALLOW(float-eq): <reason>`"
                        .to_owned(),
                });
            }
        }
    }
}

/// The operand text adjacent to a comparison operator: the span up to
/// the nearest expression separator.
fn operand_text(side: &str, forward: bool) -> String {
    const SEPARATORS: &[char] = &[',', ';', '{', '}', '&', '|', '(', ')'];
    if forward {
        let end = side.find(SEPARATORS).unwrap_or(side.len());
        side[..end].trim().to_owned()
    } else {
        let start = side.rfind(SEPARATORS).map_or(0, |i| i + 1);
        side[start..].trim().to_owned()
    }
}

/// Lexically float: contains a float literal (`digit . digit`, not a
/// tuple-field chain like `x.0.1`, optionally with exponent/suffix), an
/// exponent literal (`1e-9`), or an `f64`/`f32` marker.
fn float_operand(text: &str) -> bool {
    if text.contains("f64") || text.contains("f32") {
        return true;
    }
    if text.contains("0x") || text.contains("0X") {
        // Hex literals (`0x1E3`) would otherwise satisfy the exponent
        // heuristic below; hex is integral, never float.
        return false;
    }
    let bytes = text.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] != b'.' {
            continue;
        }
        let digit_before = i > 0 && bytes[i - 1].is_ascii_digit();
        let digit_after = i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit();
        if !(digit_before && digit_after) {
            continue;
        }
        // Walk back over the integer part; `x.0.1` (tuple fields) has a
        // `.` or identifier char in front of it — not a literal.
        let mut j = i - 1;
        while j > 0 && (bytes[j - 1].is_ascii_digit() || bytes[j - 1] == b'_') {
            j -= 1;
        }
        let lead = if j == 0 { b' ' } else { bytes[j - 1] };
        if lead != b'.' && !lead.is_ascii_alphabetic() && lead != b'_' {
            return true;
        }
    }
    // Exponent form without a dot: `1e9`, `2E-3`.
    for i in 0..bytes.len() {
        if (bytes[i] == b'e' || bytes[i] == b'E')
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && i + 1 < bytes.len()
        {
            let next = bytes[i + 1];
            let exp_start = if next == b'+' || next == b'-' {
                i + 2
            } else {
                i + 1
            };
            if exp_start < bytes.len() && bytes[exp_start].is_ascii_digit() {
                return true;
            }
        }
    }
    false
}
