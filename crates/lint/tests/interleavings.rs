//! Acceptance tests for the interleaving explorer and the three protocol
//! models (ISSUE acceptance: each good model explores ≥1000 distinct
//! schedules deterministically and passes; each intentionally-broken
//! variant is caught).

use divtopk_lint::models::{self, Bug};
use divtopk_lint::sched::{Explorer, FailureKind, SimAtomicBool, SimCondvar, SimMutex, spawn};
use std::sync::Arc;
use std::sync::atomic::Ordering;

fn explorer() -> Explorer {
    Explorer {
        max_schedules: 4096,
        max_preemptions: 2,
        max_steps: 10_000,
    }
}

/// The prefetch model's interesting schedules need more context switches
/// (park → pop → re-spawn); same bound the `lint --models` CLI uses.
fn deep_explorer() -> Explorer {
    Explorer {
        max_preemptions: 4,
        ..explorer()
    }
}

// ---------------------------------------------------------- the explorer

#[test]
fn explorer_finds_a_textbook_lost_wakeup() {
    // The minimal broken protocol: flag + condvar, but the signaller
    // does not hold the mutex across the flag store, and the waiter's
    // check and wait are separated by a yield — the explorer must find
    // the schedule where the notify lands in between.
    let result = explorer().explore(|| {
        let m = Arc::new((
            SimMutex::new(()),
            SimCondvar::new(),
            SimAtomicBool::new(false),
        ));
        let m2 = Arc::clone(&m);
        let t = spawn(move || {
            let (lock, cv, flag) = &*m2;
            if !flag.load(Ordering::SeqCst) {
                let guard = lock.lock();
                // BUG: no re-check under the lock before waiting.
                drop(cv.wait(guard));
            }
        });
        let (_, cv, flag) = &*m;
        flag.store(true, Ordering::SeqCst);
        cv.notify_one();
        t.join();
    });
    let failure = result.expect_err("lost wakeup must be found");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got {:?}",
        failure.kind
    );
}

#[test]
fn explorer_passes_the_corrected_handshake() {
    // Same protocol with both protections: store under the mutex and
    // re-check under the mutex before waiting. No schedule deadlocks.
    let report = explorer()
        .explore(|| {
            let m = Arc::new((SimMutex::new(false), SimCondvar::new()));
            let m2 = Arc::clone(&m);
            let t = spawn(move || {
                let (lock, cv) = &*m2;
                let mut flag = lock.lock();
                while !*flag {
                    flag = cv.wait(flag);
                }
            });
            let (lock, cv) = &*m;
            *lock.lock() = true;
            cv.notify_one();
            t.join();
        })
        .expect("corrected handshake must pass every schedule");
    assert!(report.exhausted, "small model should exhaust its space");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        explorer()
            .explore(|| {
                let m = Arc::new(SimMutex::new(0u32));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let m = Arc::clone(&m);
                        spawn(move || *m.lock() += 1)
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                assert!(*m.lock() == 2);
            })
            .expect("trivial counter model passes")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "two runs must produce identical reports");
    assert_eq!(a.fingerprint, b.fingerprint);
}

// ------------------------------------------------------------ the models

#[test]
fn pool_handshake_good_explores_1000_schedules() {
    let report = models::pool_handshake(&explorer(), 2, 2, Bug::None)
        .expect("pool handshake must pass every schedule");
    assert!(
        report.schedules >= 1000,
        "coverage floor: {} schedules",
        report.schedules
    );
}

#[test]
fn pool_handshake_is_deterministic() {
    let e = Explorer {
        max_schedules: 1500,
        ..explorer()
    };
    let a = models::pool_handshake(&e, 2, 2, Bug::None).expect("passes");
    let b = models::pool_handshake(&e, 2, 2, Bug::None).expect("passes");
    assert_eq!(a, b);
}

#[test]
fn pool_handshake_without_signal_serialization_deadlocks() {
    let failure = models::pool_handshake(&explorer(), 1, 1, Bug::PoolSkipSignalSerialization)
        .expect_err("dropping the signal serialization must lose a wakeup");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got {:?}",
        failure.kind
    );
}

#[test]
fn prefetch_pump_good_explores_1000_schedules() {
    let report = models::prefetch_pump(&deep_explorer(), 1, 4, Bug::None)
        .expect("prefetch pump must pass every schedule");
    assert!(
        report.schedules >= 1000,
        "coverage floor: {} schedules",
        report.schedules
    );
    assert!(
        report.exhausted,
        "this config is sized to exhaust its bounded space"
    );
}

#[test]
fn prefetch_pump_is_deterministic() {
    let a = models::prefetch_pump(&deep_explorer(), 1, 4, Bug::None).expect("passes");
    let b = models::prefetch_pump(&deep_explorer(), 1, 4, Bug::None).expect("passes");
    assert_eq!(a, b);
}

#[test]
fn prefetch_pump_without_respawn_deadlocks() {
    let failure = models::prefetch_pump(&deep_explorer(), 1, 3, Bug::PrefetchNoRespawn)
        .expect_err("a consumer that never re-spawns must starve");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got {:?}",
        failure.kind
    );
}

#[test]
fn prefetch_pump_with_unconditional_respawn_doubles_the_pump() {
    let failure = models::prefetch_pump(&deep_explorer(), 1, 3, Bug::PrefetchDoubleRespawn)
        .expect_err("re-spawning without checking parked must double-pump");
    match failure.kind {
        FailureKind::ModelPanic { message } => {
            assert!(
                message.contains("two pumps on duty"),
                "wrong assertion: {message}"
            );
        }
        other => panic!("expected the two-pumps assertion, got {other:?}"),
    }
}

#[test]
fn single_flight_good_explores_1000_schedules() {
    let report = models::single_flight(&explorer(), 3, Bug::None)
        .expect("single flight must pass every schedule");
    assert!(
        report.schedules >= 1000,
        "coverage floor: {} schedules",
        report.schedules
    );
}

#[test]
fn single_flight_is_deterministic() {
    let e = Explorer {
        max_schedules: 1500,
        ..explorer()
    };
    let a = models::single_flight(&e, 3, Bug::None).expect("passes");
    let b = models::single_flight(&e, 3, Bug::None).expect("passes");
    assert_eq!(a, b);
}

#[test]
fn single_flight_with_insert_after_release_recomputes() {
    let failure = models::single_flight(&explorer(), 2, Bug::FlightInsertAfterRelease)
        .expect_err("releasing the claim before the insert must recompute");
    match failure.kind {
        FailureKind::ModelPanic { message } => {
            assert!(
                message.contains("computed 2 times"),
                "wrong assertion: {message}"
            );
        }
        other => panic!("expected the recompute assertion, got {other:?}"),
    }
}

#[test]
fn single_flight_with_dropped_notify_deadlocks() {
    let failure = models::single_flight(&explorer(), 2, Bug::FlightDropNotify)
        .expect_err("a dropped notify must strand the waiter");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got {:?}",
        failure.kind
    );
}

// --------------------------------------------------------------- the CLI

#[test]
fn lint_bin_flags_a_seeded_violation_and_passes_a_clean_tree() {
    use std::process::Command;
    let dir = std::env::temp_dir().join(format!("divtopk-lint-fixture-{}", std::process::id()));
    let src = dir.join("crates/engine/src");
    std::fs::create_dir_all(&src).expect("mkdir fixture");
    // Seeded violation: an unwrap in a serving-path module.
    std::fs::write(
        src.join("server.rs"),
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root", dir.to_str().expect("utf8 tmpdir")])
        .output()
        .expect("run lint bin");
    assert!(!out.status.success(), "seeded violation must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/engine/src/server.rs:2") && stdout.contains("[panic]"),
        "diagnostic names file, line, and rule: {stdout}"
    );
    // Fix the file: the same tree must now pass with exit 0.
    std::fs::write(
        src.join("server.rs"),
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
    )
    .expect("rewrite fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root", dir.to_str().expect("utf8 tmpdir")])
        .output()
        .expect("run lint bin");
    assert!(out.status.success(), "clean tree must exit zero");
    std::fs::remove_dir_all(&dir).ok();
}
