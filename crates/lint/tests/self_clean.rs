//! The committed tree must be lint-clean: the same invariant CI's
//! `lint-invariants` job gates, pinned here so `cargo test` catches a
//! violation before a push does.

use divtopk_lint::walk::{lint_workspace, lintable_files};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint → crates → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root")
}

#[test]
fn committed_tree_is_lint_clean() {
    let diagnostics = lint_workspace(workspace_root()).expect("walk workspace");
    assert!(
        diagnostics.is_empty(),
        "lint violations in the committed tree:\n{}",
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn walker_sees_the_real_tree() {
    // Guard against a silently-wrong root (e.g. after a layout change):
    // the walk must find the serving modules the rules exist for.
    let files = lintable_files(workspace_root()).expect("walk workspace");
    let names: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    for expected in [
        "crates/core/src/pool.rs",
        "crates/core/src/prefetch.rs",
        "crates/core/src/sync.rs",
        "crates/engine/src/engine.rs",
        "crates/engine/src/server.rs",
        "crates/engine/src/proto.rs",
        "crates/text/src/persist.rs",
        "crates/lint/src/rules.rs",
    ] {
        assert!(
            names.contains(&expected.to_owned()),
            "walker missed {expected}"
        );
    }
    // And must not wander into vendor or target trees.
    assert!(
        names
            .iter()
            .all(|n| !n.starts_with("vendor/") && !n.starts_with("target/")),
        "walker descended into vendor/ or target/"
    );
}
