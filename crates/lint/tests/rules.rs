//! Per-rule fixtures for the invariant linter: for every rule, a snippet
//! where it fires, a snippet where the blessed annotation suppresses it,
//! and a snippet that is out of the rule's scope (wrong module, test
//! code, or a lookalike token the lexer must not confuse).

use divtopk_lint::rules::lint_source;

/// Rules fired on `source` when linted under `path`, as `(line, rule)`.
fn fired(path: &str, source: &str) -> Vec<(usize, &'static str)> {
    lint_source(path, source)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

fn rules(path: &str, source: &str) -> Vec<&'static str> {
    fired(path, source).into_iter().map(|(_, r)| r).collect()
}

// ------------------------------------------------------------------ panic

#[test]
fn panic_rule_fires_in_serving_modules() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(
        fired("crates/engine/src/server.rs", src),
        vec![(2, "panic")]
    );
    let src = "fn f() {\n    panic!(\"boom\");\n}\n";
    assert_eq!(fired("crates/core/src/pool.rs", src), vec![(2, "panic")]);
    let src = "fn f(x: Result<u8, u8>) -> u8 {\n    x.expect(\"must\")\n}\n";
    assert_eq!(fired("crates/engine/src/proto.rs", src), vec![(2, "panic")]);
}

#[test]
fn panic_rule_suppressed_by_annotation() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(panic): structurally infallible here\n    x.unwrap()\n}\n";
    assert_eq!(
        rules("crates/engine/src/engine.rs", src),
        Vec::<&str>::new()
    );
    // Same-line form.
    let src =
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // LINT-ALLOW(panic): checked above\n}\n";
    assert_eq!(
        rules("crates/engine/src/engine.rs", src),
        Vec::<&str>::new()
    );
    // A chained call on its own line is covered by the comment above the
    // statement the chain belongs to.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(panic): slot always filled\n    x.map(|v| v + 1)\n        .unwrap()\n}\n";
    assert_eq!(
        rules("crates/engine/src/engine.rs", src),
        Vec::<&str>::new()
    );
}

#[test]
fn panic_rule_out_of_scope() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    // Not a serving-path module.
    assert_eq!(rules("crates/core/src/graph.rs", src), Vec::<&str>::new());
    // Test code inside a serving module.
    let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert_eq!(
        rules("crates/engine/src/server.rs", src),
        Vec::<&str>::new()
    );
    // `unwrap_or_else` is not `unwrap`; doc text and strings never fire.
    let src = "fn f(x: Option<u32>) -> u32 {\n    let s = \"call unwrap() later\";\n    let _ = s;\n    x.unwrap_or_else(|| 0)\n}\n// unwrap() in a comment\n";
    assert_eq!(
        rules("crates/engine/src/server.rs", src),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- safety

#[test]
fn safety_rule_fires_on_uncommented_unsafe_block() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(fired("crates/core/src/pool.rs", src), vec![(2, "safety")]);
}

#[test]
fn safety_rule_suppressed_by_safety_comment() {
    let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    assert_eq!(rules("crates/core/src/pool.rs", src), Vec::<&str>::new());
    // Two-line statement: comment above the `let`, unsafe on line 2.
    let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    let v: u8 =\n        unsafe { *p };\n    v\n}\n";
    assert_eq!(rules("crates/core/src/pool.rs", src), Vec::<&str>::new());
}

#[test]
fn safety_rule_out_of_scope() {
    // `unsafe fn` / `unsafe impl` declare obligations; only blocks
    // discharge them. (The rule applies in test code too, so in_test is
    // not an exemption here — out-of-scope means non-block uses.)
    let src = "unsafe fn f(p: *const u8) -> *const u8 {\n    p\n}\nunsafe impl Send for X {}\nstruct X;\n";
    assert_eq!(rules("crates/core/src/pool.rs", src), Vec::<&str>::new());
}

// ------------------------------------------------------- ordering/relaxed

#[test]
fn ordering_rule_fires_on_orderingless_atomic_call() {
    let src = "use std::sync::atomic::AtomicUsize;\nfn f(c: &AtomicUsize, o: u8) -> usize {\n    c.fetch_add(1, order_of(o))\n}\n";
    assert_eq!(
        fired("crates/core/src/metrics.rs", src),
        vec![(3, "ordering")]
    );
}

#[test]
fn ordering_rule_accepts_explicit_ordering_even_multiline() {
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\nfn f(c: &AtomicUsize) -> usize {\n    c.fetch_add(\n        1,\n        Ordering::SeqCst,\n    )\n}\n";
    assert_eq!(rules("crates/core/src/metrics.rs", src), Vec::<&str>::new());
}

#[test]
fn ordering_rule_out_of_scope_for_non_atomic_lookalikes() {
    // `Vec::swap` and a `load` method on a plain struct: ambiguous names
    // only count in files that import sync::atomic.
    let src = "fn f(v: &mut Vec<u32>, s: &Shard) -> u32 {\n    v.swap(0, 1);\n    s.load(3)\n}\n";
    assert_eq!(rules("crates/core/src/rng.rs", src), Vec::<&str>::new());
}

#[test]
fn relaxed_rule_fires_and_is_justified_by_window_comment() {
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\nfn f(c: &AtomicUsize) -> usize {\n    c.fetch_add(1, Ordering::Relaxed)\n}\n";
    assert_eq!(
        fired("crates/engine/src/histogram.rs", src),
        vec![(3, "relaxed")]
    );
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\nfn f(c: &AtomicUsize) -> usize {\n    // RELAXED: monotonic counter, no ordering needed\n    c.fetch_add(1, Ordering::Relaxed)\n}\n";
    assert_eq!(
        rules("crates/engine/src/histogram.rs", src),
        Vec::<&str>::new()
    );
    // One comment covers a cluster within the window.
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\nfn f(a: &AtomicUsize, b: &AtomicUsize) -> usize {\n    // RELAXED: stats snapshot, torn reads fine\n    a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed)\n}\n";
    assert_eq!(
        rules("crates/engine/src/histogram.rs", src),
        Vec::<&str>::new()
    );
}

#[test]
fn relaxed_rule_ignores_cmp_ordering_and_test_code() {
    let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n    a.cmp(&b)\n}\n";
    assert_eq!(rules("crates/core/src/score.rs", src), Vec::<&str>::new());
    let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicUsize, Ordering};\n    fn t(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) }\n}\n";
    assert_eq!(rules("crates/core/src/metrics.rs", src), Vec::<&str>::new());
}

// -------------------------------------------------------------- wallclock

#[test]
fn wallclock_rule_fires_in_deterministic_modules() {
    let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(
        fired("crates/bench/src/workload.rs", src),
        vec![(2, "wallclock")]
    );
    let src = "fn f() -> std::time::SystemTime {\n    std::time::SystemTime::now()\n}\n";
    assert_eq!(
        fired("crates/core/src/testgen.rs", src),
        vec![(2, "wallclock")]
    );
}

#[test]
fn wallclock_rule_suppressed_and_out_of_scope() {
    let src = "fn f() -> std::time::Instant {\n    // LINT-ALLOW(wallclock): latency measurement only\n    std::time::Instant::now()\n}\n";
    assert_eq!(
        rules("crates/bench/src/quality.rs", src),
        Vec::<&str>::new()
    );
    // Timing is the whole point outside the deterministic modules.
    let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(rules("crates/bench/src/lib.rs", src), Vec::<&str>::new());
}

// --------------------------------------------------------------- float-eq

#[test]
fn float_eq_rule_fires_on_float_comparisons() {
    let src = "fn f(x: f64) -> bool {\n    x == 0.0\n}\n";
    assert_eq!(
        fired("crates/core/src/score.rs", src),
        vec![(2, "float-eq")]
    );
    let src = "fn f(x: f32) -> bool {\n    x != 1.5f32\n}\n";
    assert_eq!(
        fired("crates/core/src/score.rs", src),
        vec![(2, "float-eq")]
    );
}

#[test]
fn float_eq_rule_suppressed_and_out_of_scope() {
    let src = "fn f(x: f64) -> bool {\n    // LINT-ALLOW(float-eq): sentinel compare, exactly representable\n    x == 0.0\n}\n";
    assert_eq!(rules("crates/core/src/score.rs", src), Vec::<&str>::new());
    // Integer comparisons, tuple-index chains, and hex literals must not
    // look like floats.
    let src = "fn f(x: u64, t: (u32, (u32, u32))) -> bool {\n    x == 0 && t.0 == t.1.0 && x == 0x1E3\n}\n";
    assert_eq!(rules("crates/core/src/score.rs", src), Vec::<&str>::new());
    // Test code is exempt (oracle tests pin exact values on purpose).
    let src = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.25 }\n}\n";
    assert_eq!(rules("crates/core/src/score.rs", src), Vec::<&str>::new());
}

// ------------------------------------------------------------- annotation

#[test]
fn annotation_rule_rejects_unknown_rule_and_missing_reason() {
    let src =
        "fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(bogus): whatever\n    x.unwrap()\n}\n";
    let got = fired("crates/engine/src/server.rs", src);
    assert!(
        got.contains(&(2, "annotation")) && got.contains(&(3, "panic")),
        "unknown rule is flagged and does not suppress: {got:?}"
    );
    let src = "fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(panic):\n    x.unwrap()\n}\n";
    let got = fired("crates/engine/src/server.rs", src);
    assert!(
        got.contains(&(2, "annotation")),
        "reason-less allow is flagged: {got:?}"
    );
    let src = "fn f() {\n    // LINT-ALLOW panic: missing parens\n}\n";
    let got = fired("crates/engine/src/server.rs", src);
    assert!(
        got.contains(&(2, "annotation")),
        "malformed allow is flagged: {got:?}"
    );
}

#[test]
fn annotation_rule_accepts_well_formed_allows() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(panic): structurally infallible\n    x.unwrap()\n}\n";
    assert_eq!(
        rules("crates/engine/src/server.rs", src),
        Vec::<&str>::new()
    );
}

// ----------------------------------------------------------------- lexing

#[test]
fn lexer_keeps_rules_out_of_strings_and_comments() {
    // A serving module whose only "violations" live in literals and docs.
    let src = concat!(
        "/// Call unwrap() at your peril; panic!(\"no\") is worse.\n",
        "fn f() -> String {\n",
        "    let a = \"x.unwrap()\";\n",
        "    let b = r#\"panic!(\"deep\")\"#;\n",
        "    format!(\"{a}{b}\")\n",
        "}\n",
    );
    assert_eq!(
        rules("crates/engine/src/server.rs", src),
        Vec::<&str>::new()
    );
}
