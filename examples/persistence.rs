//! Cold-start persistence demo: build → mutate → save → load → serve.
//!
//! Builds a serving engine, mutates it live, persists the whole serving
//! state to a checksummed snapshot directory (DESIGN.md §14), restores a
//! second engine from it, and shows the restored engine answering
//! byte-identically. It then checkpoints again after another mutation to
//! show the incremental save writing only the delta, and demonstrates
//! that corrupt snapshot bytes come back as a typed error, never a
//! panic. Run with:
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use divtopk::engine::prelude::*;
use divtopk::text::persist::SnapshotError;
use divtopk::text::prelude::*;

fn main() {
    // Build the epoch and mutate it, so the snapshot carries segments,
    // tombstones, and a non-zero generation — real serving state, not a
    // freshly built index.
    let mut b = Corpus::builder();
    b.add_text("rust-1", "rust memory safety borrow checker");
    b.add_text("rust-2", "rust memory safety borrow checker ownership");
    b.add_text("rust-3", "rust async web services tokio");
    b.add_text("go", "goroutines channels simple concurrency");
    for i in 0..8 {
        b.add_text(&format!("f{i}"), "unrelated archive filler text");
    }
    let corpus = b.build();
    let rust = corpus.term_id("rust").unwrap();

    let engine = Engine::new(corpus, EngineConfig::new(2));
    engine.add_text("rust-4", "rust embedded no-std firmware");
    engine.delete_docs(&[1]); // retract the near-duplicate
    let options = SearchOptions::new(3).with_tau(0.5);
    let before = engine.search(&Query::Scan(rust), &options).unwrap();
    println!(
        "live engine: generation {}, {} hits",
        engine.generation(),
        before.hits.len()
    );

    // Persist the full serving state: corpus epoch, document chunks,
    // one file per segment (posting partials bit-exact), tombstones,
    // generation — each file checksummed, tied together by a manifest.
    let path =
        std::env::temp_dir().join(format!("divtopk-example-{}.snapshot", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let report = engine.save_snapshot(&path).unwrap();
    println!(
        "saved snapshot: {} files, {} bytes → {}",
        report.files_written,
        report.bytes_written,
        path.display()
    );

    // Cold start: a brand-new engine restored from the directory. No
    // tokenizing, no sorting, no statistics recomputation — and the
    // answers are byte-identical, early-stop metrics included.
    let restored = Engine::load_snapshot(&path, &EngineConfig::default()).unwrap();
    let after = restored.search(&Query::Scan(rust), &options).unwrap();
    assert_eq!(before, after);
    assert_eq!(restored.generation(), engine.generation());
    restored.verify_rebuild_equivalence().unwrap();
    println!(
        "restored engine: generation {} · answers byte-identical ✓",
        restored.generation()
    );

    // The restored engine is a full serving engine: mutations continue
    // from the saved generation — and the next checkpoint is O(delta):
    // unchanged segment and chunk files are reused on disk, only the new
    // segment, the tail chunk, and the manifest are rewritten.
    restored.add_text("rust-5", "rust compiler diagnostics");
    let second = restored.save_snapshot(&path).unwrap();
    println!(
        "incremental checkpoint: generation {} · wrote {} files ({} bytes), reused {}",
        restored.generation(),
        second.files_written,
        second.bytes_written,
        second.files_reused
    );

    // Corruption is a typed error, never a panic: flip one payload bit
    // in one of the segment files.
    let segment_file = std::fs::read_dir(&path)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .expect("snapshot contains a segment file");
    let mut corrupt = std::fs::read(&segment_file).unwrap();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 1;
    std::fs::write(&segment_file, &corrupt).unwrap();
    match Engine::load_snapshot(&path, &EngineConfig::default()) {
        Err(e @ SnapshotError::ChecksumMismatch { .. }) => {
            println!("corrupt snapshot rejected: {e}");
        }
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&path).unwrap();
}
