//! Quickstart: the paper's running example (Fig. 1) end to end.
//!
//! Six search results with scores 10, 8, 7, 7, 6, 1 and a similarity
//! structure that makes plain top-k redundant. We solve the diversified
//! top-k exactly with all three algorithms and compare against greedy.
//!
//! Run with: `cargo run --example quickstart`

use divtopk::core::exhaustive::exhaustive;
use divtopk::*;

fn main() {
    // The diversity graph of Fig. 1: node ids are v1..v6 in score order.
    let graph = DiversityGraph::paper_fig1();
    println!(
        "diversity graph: {} nodes, {} edges",
        graph.len(),
        graph.edge_count()
    );
    for v in graph.nodes() {
        println!(
            "  v{} score {:>2}  similar to {:?}",
            v + 1,
            graph.score(v),
            graph.neighbors(v).iter().map(|n| n + 1).collect::<Vec<_>>()
        );
    }

    for k in [2usize, 3] {
        println!("\n=== diversified top-{k} ===");
        let astar = div_astar(&graph, k);
        let dp = div_dp(&graph, k);
        let cut = div_cut(&graph, k);
        let oracle = exhaustive(&graph, k);
        let (greedy_nodes, greedy_score) = greedy(&graph, k);

        for (name, result) in [("div-astar", &astar), ("div-dp", &dp), ("div-cut", &cut)] {
            let best = result.best();
            println!(
                "{name:>10}: score {:>2}  nodes {:?}",
                best.score(),
                best.nodes().iter().map(|n| n + 1).collect::<Vec<_>>()
            );
            assert_eq!(best.score(), oracle.best().score(), "{name} must be exact");
        }
        println!(
            "{:>10}: score {:>2}  nodes {:?}   (heuristic — no guarantee)",
            "greedy",
            greedy_score,
            greedy_nodes.iter().map(|n| n + 1).collect::<Vec<_>>()
        );
    }

    // The same answer through the streaming framework: results arrive one
    // by one (incremental top-k) and the engine stops as early as possible.
    println!("\n=== streaming (div-search framework) ===");
    let items: Vec<Scored<&str>> = vec![
        Scored::new("v1", Score::new(10.0)),
        Scored::new("v2", Score::new(8.0)),
        Scored::new("v3", Score::new(7.0)),
        Scored::new("v4", Score::new(7.0)),
        Scored::new("v5", Score::new(6.0)),
        Scored::new("v6", Score::new(1.0)),
    ];
    // Similarity = the Fig. 1 edges, keyed by label.
    let edges = [
        ("v1", "v3"),
        ("v1", "v4"),
        ("v1", "v5"),
        ("v2", "v3"),
        ("v2", "v4"),
        ("v2", "v5"),
        ("v4", "v6"),
        ("v5", "v6"),
    ];
    let similar = move |a: &&str, b: &&str| {
        edges
            .iter()
            .any(|&(x, y)| (x == *a && y == *b) || (x == *b && y == *a))
    };
    let out = DivTopK::new(
        IncrementalVecSource::new(items),
        similar,
        DivSearchConfig::new(3),
    )
    .run()
    .expect("unbudgeted run");
    println!(
        "selected {:?} with total score {} after pulling {} results",
        out.selected.iter().map(|r| r.item).collect::<Vec<_>>(),
        out.total_score,
        out.metrics.results_generated
    );
    assert_eq!(out.total_score, Score::new(20.0));
}
