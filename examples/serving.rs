//! Serving demo: the sharded, cached, concurrent engine end to end.
//!
//! Builds a reuters-like synthetic corpus, shards it four ways, and serves
//! a Zipf-repeating query trace (the realistic shape of web-search
//! traffic: a few head queries dominate) through `Engine::search_batch`,
//! printing throughput and cache behaviour. Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use divtopk::engine::prelude::*;
use divtopk::text::prelude::*;
use std::time::Instant;

fn main() {
    // A corpus standing in for a production index (scaled to demo size).
    let corpus = generate(&SynthConfig::reuters_like().with_num_docs(4_000));
    let num_docs = corpus.num_docs();

    let build_start = Instant::now();
    let engine = Engine::new(corpus, EngineConfig::new(4).with_cache_capacity(1024));
    println!(
        "engine up: {} docs, {} base segments, {} batch worker(s), built in {:.2?}",
        num_docs,
        engine.stats().segments,
        engine.threads(),
        build_start.elapsed(),
    );

    // Distinct queries drawn from the paper's kfreq bands, then repeated
    // Zipf-style into a 60-query trace (head queries repeat often).
    let mut distinct: Vec<(Query, SearchOptions)> = Vec::new();
    for band in 1..=3u8 {
        for seed in 0..4u64 {
            if let Some(q) = query_for_band(&engine.corpus(), band, 2, 1000 + seed) {
                distinct.push((
                    Query::Keywords(q),
                    SearchOptions::new(10).with_tau(0.6).with_bound_decay(0.005),
                ));
            }
        }
    }
    // Zipf popularity: rank r served with weight 1/(r+1) — the same
    // harmonic CDF the perfbase serving_throughput suite replays, so the
    // cache-hit numbers printed here are comparable to BENCH_3.json's.
    let mut rng = divtopk::core::rng::Pcg::new(7);
    let cdf: Vec<f64> = distinct
        .iter()
        .enumerate()
        .scan(0.0, |acc, (r, _)| {
            *acc += 1.0 / (r + 1) as f64;
            Some(*acc)
        })
        .collect();
    let trace: Vec<(Query, SearchOptions)> = (0..60)
        .map(|_| distinct[rng.sample_cdf(&cdf)].clone())
        .collect();

    let start = Instant::now();
    let results = engine.search_batch(&trace);
    let elapsed = start.elapsed();

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let qps = ok as f64 / elapsed.as_secs_f64();
    println!(
        "served {ok}/{} queries in {:.2?} — {:.0} queries/sec",
        trace.len(),
        elapsed,
        qps
    );

    let stats = engine.stats();
    println!(
        "cache: {} hits / {} misses ({} entries, {} evictions) — hit rate {:.0}%",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_entries,
        stats.cache_evictions,
        100.0 * stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64,
    );

    // Show one answer: diversified top-k for the head query.
    if let Ok(out) = &results[0] {
        println!(
            "head query: {} hits, total score {:.3}, pulled {} results{}",
            out.hits.len(),
            out.total_score.get(),
            out.metrics.results_generated,
            if out.metrics.early_stopped {
                " (early stop)"
            } else {
                ""
            },
        );
        for hit in &out.hits {
            println!(
                "  {}  score {:.3}",
                engine.corpus().doc(hit.doc).title,
                hit.score.get()
            );
        }
    }
}
