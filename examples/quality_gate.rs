//! Quality-gate demo: score a query-pack on diversity *and* relevance.
//!
//! Builds the committed default query-pack (`benchmarks/query-pack.v1.json`
//! is this pack, emitted to disk), replays every family through the engine
//! twice per query — diversity on vs. off against the same snapshot — and
//! prints the evidence table: unique-source@k, max-share@k, pairwise
//! dissimilarity@k, plus the NDCG/MRR relevance guards against the
//! diversity-off oracle. Then it tightens one gate past measured reality
//! to show what a CI failure looks like. Run with:
//!
//! ```text
//! cargo run --release --example quality_gate
//! ```

use divtopk_bench::quality::evaluate;
use divtopk_bench::workload::QueryPack;

fn main() {
    // The same pack CI gates on (see `quality_gate --emit-default-pack`).
    let pack = QueryPack::default_pack();
    println!(
        "pack {:?}: seed {}, {} families\n",
        pack.name,
        pack.seed,
        pack.families.len()
    );

    let report = evaluate(&pack).expect("default pack evaluates");
    println!("{}", report.render_table());
    assert!(report.pass(), "the committed pack must pass its own gates");
    println!(
        "all {} families pass their declared gates\n",
        report.families.len()
    );

    // What failure looks like: demand a diversity gain the engine does
    // not deliver, and the gate names the family and the metric.
    let mut tightened = pack.clone();
    tightened.families[0].gates.min_unique_sources_gain = Some(100.0);
    let failing = evaluate(&tightened).expect("tightened pack still evaluates");
    assert!(!failing.pass());
    for failure in failing.failures() {
        println!("tightened gate trips: {failure}");
    }
}
