//! Single-keyword diversified news search (the paper's reuters setup).
//!
//! A news reader wants the top stories for one keyword without seeing five
//! rewrites of the same wire item. The posting list — already sorted by
//! score — is consumed incrementally (Algorithm 1), and the engine stops
//! as soon as the diversified answer is provably final. Also contrasts the
//! exact answer with the greedy heuristic on the induced diversity graph.
//!
//! Run with: `cargo run --release --example news_feed`

use divtopk::core::exhaustive::exhaustive;
use divtopk::text::prelude::*;
use divtopk::{DiversityGraph, ExactAlgorithm, Score};

fn main() {
    let corpus = generate(&SynthConfig::reuters_like().with_num_docs(6_000));
    let index = InvertedIndex::build(&corpus);
    println!(
        "corpus: {} docs, {} postings",
        corpus.num_docs(),
        index.num_postings()
    );

    // A newsworthy keyword: the longest posting list among terms rare
    // enough to keep a meaningful IDF (df ≤ 10% of the corpus).
    let term = (0..corpus.num_terms() as TermId)
        .filter(|&t| corpus.doc_freq(t) as usize <= corpus.num_docs() / 10)
        .max_by_key(|&t| index.postings(t).len())
        .expect("non-empty corpus");
    println!(
        "keyword {:?}: {} matching stories",
        corpus.vocab().term(term),
        index.postings(term).len()
    );

    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let k = 8;
    for tau in [0.4, 0.6, 0.8] {
        let options = SearchOptions::new(k)
            .with_tau(tau)
            .with_mode(DiversifyMode::Exact(ExactAlgorithm::Cut));
        let out = searcher.search_scan(term, &options).expect("unbudgeted");
        println!(
            "\nτ = {tau}: total score {:.4}, {} stories, pulled {} results, early stop {}",
            out.total_score.get(),
            out.hits.len(),
            out.metrics.results_generated,
            out.metrics.early_stopped
        );
        for h in &out.hits {
            println!("  {:<12} {:.4}", corpus.doc(h.doc).title, h.score.get());
        }
    }

    // Greedy vs exact on the full materialized graph (τ = 0.6).
    let tau = 0.6;
    let items: Vec<(DocId, Score)> = index
        .postings(term)
        .iter()
        .map(|p| (p.doc, Score::new(p.partial)))
        .collect();
    let (graph, _) = DiversityGraph::from_items(
        &items,
        |&(_, s)| s,
        |&(a, _), &(b, _)| weighted_jaccard(&corpus, corpus.doc(a), corpus.doc(b)) > tau,
    );
    let (greedy_nodes, greedy_score) = divtopk::greedy(&graph, k);
    let exact = if graph.len() <= 24 {
        exhaustive(&graph, k).best().score()
    } else {
        divtopk::div_cut(&graph, k).best().score()
    };
    println!(
        "\ngreedy vs exact on the {}-node diversity graph (τ = {tau}):",
        graph.len()
    );
    println!(
        "  greedy: {:.4} with {} picks",
        greedy_score.get(),
        greedy_nodes.len()
    );
    println!("  exact : {:.4}", exact.get());
    assert!(greedy_score <= exact);
}
