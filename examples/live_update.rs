//! Live-update demo: serving a mutating corpus through snapshots.
//!
//! Builds a small news corpus, then interleaves queries with document
//! additions, deletions, and a compaction — showing how the diversified
//! top-k answer tracks the live state while every read stays consistent
//! with one snapshot generation. Run with:
//!
//! ```text
//! cargo run --release --example live_update
//! ```

use divtopk::engine::prelude::*;
use divtopk::text::prelude::*;

fn show(tag: &str, engine: &Engine, out: &SearchOutput) {
    let corpus = engine.corpus();
    let stats = engine.stats();
    println!(
        "[{tag}] generation {} · {} segments · {} tombstones · {} compactions",
        stats.generation, stats.segments, stats.tombstones, stats.compactions
    );
    for hit in &out.hits {
        println!(
            "    #{:<2} {:<24} score {:.3}",
            hit.doc,
            corpus.doc(hit.doc).title,
            hit.score.get()
        );
    }
}

fn main() {
    // A tiny newsroom corpus. The epoch's vocabulary is frozen at build
    // time, so seed documents establish the words live updates may use.
    let mut b = Corpus::builder();
    b.add_text("storm-1", "storm surge floods coastal city downtown");
    b.add_text("storm-2", "storm surge floods coastal city harbor");
    b.add_text("storm-3", "hurricane storm wind damage inland");
    b.add_text("sports", "cup final penalty shootout drama");
    b.add_text("markets", "stocks rally earnings beat forecast");
    for i in 0..8 {
        b.add_text(
            &format!("archive-{i}"),
            "miscellaneous archive background noise",
        );
    }
    let corpus = b.build();
    let storm = corpus.term_id("storm").unwrap();

    let engine = Engine::new(corpus, EngineConfig::new(2).with_cache_capacity(256));
    let options = SearchOptions::new(3).with_tau(0.5);
    let query = Query::Scan(storm);

    let out = engine.search(&query, &options).unwrap();
    show("initial", &engine, &out);

    // Breaking news arrives: a fresh, heavily on-topic report. The write
    // publishes a new snapshot generation; in-flight readers would keep
    // their pinned epoch, new readers see the document immediately.
    let breaking = engine.add_text("storm-update", "storm storm surge evacuation ordered");
    let out = engine.search(&query, &options).unwrap();
    show("after add", &engine, &out);
    assert!(out.hits.iter().any(|h| h.doc == breaking));

    // The two near-duplicate originals are retracted: tombstones only —
    // no segment is rewritten, and the cache cannot serve the old answer
    // because its entries are keyed to the previous generation.
    engine.delete_docs(&[0, 1]);
    let out = engine.search(&query, &options).unwrap();
    show("after delete", &engine, &out);
    assert!(out.hits.iter().all(|h| h.doc != 0 && h.doc != 1));

    // Housekeeping: merge the small segments and purge the tombstones'
    // postings. The answer is — provably — unchanged.
    let before = engine.search(&query, &options).unwrap();
    let merged = engine.compact();
    let after = engine.search(&query, &options).unwrap();
    assert_eq!(before.hits, after.hits);
    show(
        &format!("after compacting {merged} segments"),
        &engine,
        &after,
    );

    // The invariant everything above rests on, checked on the live data:
    // the segmented state is byte-equivalent to a from-scratch rebuild of
    // the surviving documents.
    engine.verify_rebuild_equivalence().unwrap();
    println!("rebuild-equivalence verified ✓");
}
