//! Exact diversified top-k vs the two heuristic baselines.
//!
//! * **greedy** (§4 of the paper): respects the τ constraint but can be
//!   arbitrarily far from the optimal total score;
//! * **MMR** (Carbonell & Goldstein, the related-work two-step family):
//!   penalizes redundancy instead of forbidding it — near-duplicates leak
//!   back into the answer.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use divtopk::core::greedy::greedy;
use divtopk::text::mmr::{MmrConfig, mmr_documents};
use divtopk::text::prelude::*;
use divtopk::text::quality::{redundancy, total_score};
use divtopk::{DiversityGraph, ResultSource, Scored};

fn main() {
    let corpus = generate(&SynthConfig::enwiki_like().with_num_docs(5_000));
    let index = InvertedIndex::build(&corpus);
    let query = query_for_band(&corpus, 2, 2, 77).expect("band 2 populated");
    let words: Vec<&str> = query
        .terms
        .iter()
        .map(|&t| corpus.vocab().term(t))
        .collect();
    println!("query {:?} over {} docs", words, corpus.num_docs());

    let (k, tau) = (12usize, 0.6);

    // Exact: the framework with div-cut.
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let exact = searcher
        .search_ta(&query, &SearchOptions::new(k).with_tau(tau))
        .expect("unbudgeted");

    // Materialize candidates for the offline baselines.
    let mut ta = TaSource::new(&corpus, &index, &query.terms);
    let mut cands: Vec<Scored<DocId>> = Vec::new();
    while let Some(r) = ta.next_result() {
        cands.push(r);
    }
    cands.sort_by_key(|r| std::cmp::Reverse(r.score));
    cands.truncate(k * 25);

    // Greedy on the materialized diversity graph.
    let (graph, perm) = DiversityGraph::from_items(
        &cands,
        |r| r.score,
        |a, b| weighted_jaccard(&corpus, corpus.doc(a.item), corpus.doc(b.item)) > tau,
    );
    let (greedy_nodes, greedy_score) = greedy(&graph, k);
    let greedy_sel: Vec<Scored<DocId>> = greedy_nodes
        .iter()
        .map(|&v| cands[perm[v as usize] as usize].clone())
        .collect();

    // MMR.
    let mmr_sel = mmr_documents(&corpus, &cands, &MmrConfig::new(k).with_lambda(0.7));

    println!(
        "\n{:<10} {:>12} {:>14} {:>12}",
        "method", "total score", "τ-violations", "max sim"
    );
    for (name, score, sel) in [
        (
            "exact",
            exact.total_score,
            exact
                .hits
                .iter()
                .map(|h| Scored::new(h.doc, h.score))
                .collect::<Vec<_>>(),
        ),
        ("greedy", greedy_score, greedy_sel),
        ("mmr", total_score(&mmr_sel), mmr_sel),
    ] {
        let (violations, max_sim) = redundancy(&corpus, &sel, tau);
        println!(
            "{:<10} {:>12.4} {:>14} {:>12.3}",
            name,
            score.get(),
            violations,
            max_sim
        );
    }
    println!("\nexact is provably maximal among τ-feasible selections of ≤ {k} docs;");
    println!("greedy is feasible but may score lower; MMR may violate τ outright.");

    assert!(greedy_score <= exact.total_score);
    let (exact_viol, _) = redundancy(
        &corpus,
        &exact
            .hits
            .iter()
            .map(|h| Scored::new(h.doc, h.score))
            .collect::<Vec<_>>(),
        tau,
    );
    assert_eq!(exact_viol, 0);
}
