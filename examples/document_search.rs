//! Multi-keyword diversified document search (the paper's enwiki setup).
//!
//! Generates a Wikipedia-like synthetic corpus, indexes it, and runs a
//! multi-keyword query through the threshold algorithm (bounding top-k
//! framework) with div-cut as the inner exact search. Compares the
//! diversified answer with the plain (non-diversified) top-k to show the
//! redundancy being removed.
//!
//! Run with: `cargo run --release --example document_search`

use divtopk::text::prelude::*;
use divtopk::{ExactAlgorithm, ResultSource};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let config = SynthConfig::enwiki_like().with_num_docs(10_000);
    let corpus = generate(&config);
    println!(
        "corpus: {} docs, {} terms ({:.2?})",
        corpus.num_docs(),
        corpus.num_terms(),
        t0.elapsed()
    );
    let t1 = Instant::now();
    let index = InvertedIndex::build(&corpus);
    println!(
        "index: {} postings ({:.2?})",
        index.num_postings(),
        t1.elapsed()
    );

    // A 2-keyword query from the middle frequency band (kfreq = 3).
    let query = query_for_band(&corpus, 3, 2, 42)
        .or_else(|| query_for_band(&corpus, 2, 2, 42))
        .expect("synthetic corpus populates the low/mid bands");
    let words: Vec<&str> = query
        .terms
        .iter()
        .map(|&t| corpus.vocab().term(t))
        .collect();
    println!(
        "query: {:?} (df = {:?})",
        words,
        query
            .terms
            .iter()
            .map(|&t| corpus.doc_freq(t))
            .collect::<Vec<_>>()
    );

    let k = 10;
    let searcher = DiversifiedSearcher::new(&corpus, &index);

    // Plain top-k (no diversity): drain the TA source, keep the k best.
    let mut ta = TaSource::new(&corpus, &index, &query.terms);
    let mut all = Vec::new();
    while let Some(r) = ta.next_result() {
        all.push(r);
    }
    all.sort_by_key(|r| std::cmp::Reverse(r.score));
    println!("\nplain top-{k} (note the near-duplicates):");
    print_docs(&corpus, all.iter().take(k).map(|r| (r.item, r.score.get())));

    // Diversified top-k.
    let t2 = Instant::now();
    let options = SearchOptions::new(k)
        .with_tau(0.6)
        .with_mode(DiversifyMode::Exact(ExactAlgorithm::Cut));
    let out = searcher
        .search_ta(&query, &options)
        .expect("unbudgeted search");
    println!(
        "\ndiversified top-{k} (τ = 0.6, div-cut, {:.2?}):",
        t2.elapsed()
    );
    print_docs(&corpus, out.hits.iter().map(|h| (h.doc, h.score.get())));
    println!(
        "\npulled {} of {} matching results before stopping (early stop: {}); \
         {} inner searches, {} graph edges",
        out.metrics.results_generated,
        all.len(),
        out.metrics.early_stopped,
        out.metrics.inner_searches,
        out.metrics.edges,
    );

    // Show pairwise similarity inside each answer.
    let max_sim = |hits: &[(DocId, f64)]| {
        let mut m: f64 = 0.0;
        for i in 0..hits.len() {
            for j in (i + 1)..hits.len() {
                m = m.max(weighted_jaccard(
                    &corpus,
                    corpus.doc(hits[i].0),
                    corpus.doc(hits[j].0),
                ));
            }
        }
        m
    };
    let plain: Vec<(DocId, f64)> = all
        .iter()
        .take(k)
        .map(|r| (r.item, r.score.get()))
        .collect();
    let diverse: Vec<(DocId, f64)> = out.hits.iter().map(|h| (h.doc, h.score.get())).collect();
    println!(
        "max pairwise similarity — plain: {:.3}, diversified: {:.3} (threshold 0.6)",
        max_sim(&plain),
        max_sim(&diverse)
    );
}

fn print_docs(corpus: &Corpus, docs: impl Iterator<Item = (DocId, f64)>) {
    for (doc, score) in docs {
        let d = corpus.doc(doc);
        println!(
            "  {:<12} score {:.4}  len {:>4}  distinct {:>4}",
            d.title,
            score,
            d.len,
            d.distinct_terms()
        );
    }
}
