//! Diversified top-k beyond text: an e-commerce catalog.
//!
//! The framework's only domain hook is the similarity predicate (§2's
//! single assumption). Here products are feature vectors and two products
//! are "similar" when their cosine similarity exceeds τ — a shopper asking
//! for "running shoes" should see different brands/styles, not ten
//! colorways of one model. Results arrive from a bounding source (think: a
//! distributed store returning batches with a score watermark).
//!
//! Run with: `cargo run --example custom_similarity`

use divtopk::*;

#[derive(Debug, Clone)]
struct Product {
    name: &'static str,
    /// (brand_hash, style, cushioning, weight, price_bucket) — normalized.
    features: [f64; 5],
}

fn cosine(a: &[f64; 5], b: &[f64; 5]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn main() {
    // Relevance scores from the (fictional) ranking service; the three
    // "Aero" items are colorways of one shoe and nearly identical vectors.
    let catalog = vec![
        Scored::new(
            Product {
                name: "Aero Glide (blue)",
                features: [0.9, 0.8, 0.7, 0.3, 0.5],
            },
            Score::new(9.7),
        ),
        Scored::new(
            Product {
                name: "Aero Glide (red)",
                features: [0.9, 0.8, 0.7, 0.3, 0.5],
            },
            Score::new(9.6),
        ),
        Scored::new(
            Product {
                name: "Aero Glide (black)",
                features: [0.9, 0.79, 0.71, 0.3, 0.5],
            },
            Score::new(9.5),
        ),
        Scored::new(
            Product {
                name: "TrailBeast 2",
                features: [0.2, 0.1, 0.9, 0.8, 0.4],
            },
            Score::new(8.9),
        ),
        Scored::new(
            Product {
                name: "CityPacer",
                features: [0.5, 0.9, 0.2, 0.1, 0.9],
            },
            Score::new(8.4),
        ),
        Scored::new(
            Product {
                name: "Marathon Pro",
                features: [0.1, 0.7, 0.8, 0.2, 0.1],
            },
            Score::new(8.0),
        ),
        Scored::new(
            Product {
                name: "TrailBeast 2 GTX",
                features: [0.2, 0.12, 0.9, 0.82, 0.45],
            },
            Score::new(7.8),
        ),
        Scored::new(
            Product {
                name: "Budget Runner",
                features: [0.4, 0.4, 0.3, 0.4, 1.0],
            },
            Score::new(6.2),
        ),
    ];

    let tau = 0.97;
    let similarity = ThresholdSimilarity::new(
        |a: &Product, b: &Product| cosine(&a.features, &b.features),
        tau,
    );

    println!("plain top-4 (redundant):");
    for r in catalog.iter().take(4) {
        println!("  {:<20} {}", r.item.name, r.score);
    }

    let source = BoundingVecSource::new(catalog);
    let out = DivTopK::new(source, similarity, DivSearchConfig::new(4))
        .run()
        .expect("unbudgeted run");

    println!("\ndiversified top-4 (cosine τ = {tau}):");
    for r in &out.selected {
        println!("  {:<20} {}", r.item.name, r.score);
    }
    println!(
        "total score {} after examining {} products",
        out.total_score, out.metrics.results_generated
    );

    // Exactly one Aero colorway and one TrailBeast variant may appear.
    let aeros = out
        .selected
        .iter()
        .filter(|r| r.item.name.starts_with("Aero"))
        .count();
    let beasts = out
        .selected
        .iter()
        .filter(|r| r.item.name.starts_with("TrailBeast"))
        .count();
    assert_eq!(aeros, 1, "colorways are near-duplicates");
    assert_eq!(beasts, 1, "GTX variant is a near-duplicate");
}
