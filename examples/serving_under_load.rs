//! Serving under load: the TCP server, wire protocol, and backpressure
//! end to end — in one process, no flags, no network setup.
//!
//! Boots a 4-shard engine behind [`Server`], then plays three client
//! roles against it over real TCP:
//!
//! 1. a well-behaved client (ping, a few searches, stats);
//! 2. a burst that overruns the admission queue and collects the typed
//!    `Overloaded` rejections — backpressure as a protocol answer, not a
//!    hang;
//! 3. a stats read showing the latency histogram and serving counters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving_under_load
//! ```
//!
//! The standalone binaries do the same over a real deployment boundary:
//! `serve` hosts an engine, `loadgen` drives an open-loop trace at a
//! fixed arrival rate (see README "Serving under load").

use divtopk::engine::prelude::*;
use divtopk::engine::proto::{self, Request, Response};
use divtopk::text::prelude::*;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).ok();
    stream
}

fn roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
    proto::write_frame(stream, &proto::encode_request(request).unwrap()).expect("send");
    let frame = proto::read_frame(stream)
        .expect("recv")
        .expect("server closed");
    proto::decode_response(&frame).expect("decode")
}

fn search(term: TermId) -> Request {
    Request::Search {
        query: Query::Scan(term),
        k: 8,
        tau: 0.5,
        bound_decay: 0.005,
        mode: DiversifyMode::exact(),
    }
}

/// Terms with mid-sized posting lists — queries that do real work.
fn interesting_terms(corpus: &Corpus, count: usize) -> Vec<TermId> {
    let index = InvertedIndex::build(corpus);
    let mut terms: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| (8..=80).contains(&index.postings(t).len()))
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(index.postings(t).len()));
    terms.truncate(count);
    terms
}

fn main() {
    // An engine standing in for a production index, served over TCP on a
    // kernel-assigned port. Cache off (every search pays full price) and
    // a small worker pool + shallow queue so the burst below can
    // actually overflow it.
    let corpus = generate(&SynthConfig::reuters_like().with_num_docs(3_000));
    let terms = interesting_terms(&corpus, 12);
    let engine = Arc::new(Engine::new(
        corpus,
        EngineConfig::new(4).with_cache_capacity(0),
    ));
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    println!("serving on {addr} (1 worker, queue depth 2)");

    // A term with a healthy posting list, discovered through the stats
    // endpoint — the same handshake `loadgen` uses to build its trace.
    let mut stream = connect(&addr);
    assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
    let Response::Stats(stats) = roundtrip(&mut stream, &Request::Stats) else {
        panic!("stats request must draw a stats response");
    };
    println!(
        "handshake: generation {}, {} docs, {} terms",
        stats.generation, stats.num_docs, stats.num_terms
    );
    assert!(stats.num_terms > 0, "frozen vocabulary is nonempty");

    // 1. The polite client: sequential searches, every answer typed.
    for (round, &term) in terms.iter().take(3).enumerate() {
        match roundtrip(&mut stream, &search(term)) {
            Response::Hits(hits) => println!(
                "search {}: {} hits, total score {:.3}, generation {}{}",
                round,
                hits.hits.len(),
                hits.total_score,
                hits.generation,
                if hits.early_stopped {
                    " (early stop)"
                } else {
                    ""
                },
            ),
            Response::Error { code, message } => {
                println!("search {round}: typed error {code:?}: {message}")
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // 2. The burst: 12 simultaneous one-shot searches into a server that
    // can hold at most workers + queue = 3. The overflow is *rejected*,
    // immediately and typed — nobody waits on an unbounded queue.
    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let terms = &terms;
    let outcomes: Vec<&str> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut stream = connect(&addr);
                    barrier.wait();
                    match roundtrip(&mut stream, &search(terms[i % terms.len()])) {
                        Response::Hits(_) => "served",
                        Response::Overloaded { .. } => "overloaded",
                        other => panic!("unexpected burst response {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let served = outcomes.iter().filter(|o| **o == "served").count();
    let shed = outcomes.iter().filter(|o| **o == "overloaded").count();
    println!("burst of {clients}: {served} served, {shed} shed with typed Overloaded");
    assert_eq!(served + shed, clients, "every request draws a response");

    // 3. Stats again: counters and the latency histogram agree with what
    // we just did.
    let Response::Stats(after) = roundtrip(&mut stream, &Request::Stats) else {
        panic!("stats request must draw a stats response");
    };
    println!(
        "counters: {} searches measured, {} overloaded, {} protocol errors",
        after.search_count, after.overloaded, after.protocol_errors
    );
    println!(
        "latency:  p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        after.search_p50_ns as f64 / 1e6,
        after.search_p95_ns as f64 / 1e6,
        after.search_p99_ns as f64 / 1e6,
    );

    drop(server); // graceful: drain, respond, close, join
    println!("server shut down cleanly");
}
