//! Property-based tests (proptest) on the library's core invariants.

use divtopk::core::exhaustive::exhaustive;
use divtopk::core::ops::{combine_alternative, combine_disjoint};
use divtopk::core::{components::connected_components, compress::compress};
use divtopk::text::prelude::*;
use divtopk::*;
use proptest::prelude::*;

// ---------- strategies ----------

/// A random diversity graph: n nodes, integer scores, edge probability p.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = DiversityGraph> {
    (1..=max_n, 0u64..1_000_000, 0.0f64..0.9).prop_map(|(n, seed, p)| {
        let mut rng = divtopk::core::rng::Pcg::new(seed);
        let mut scores: Vec<Score> = (0..n).map(|_| Score::from(rng.range(1, 500))).collect();
        scores.sort_by(|a, b| b.cmp(a));
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.chance(p) {
                    edges.push((i, j));
                }
            }
        }
        DiversityGraph::from_sorted_scores(scores, &edges)
    })
}

/// A random per-size solution table over disjoint node-id ranges
/// (nodes `base..base+len` guaranteed independent: synthetic).
fn table_strategy(k: usize, base: u32) -> impl Strategy<Value = SearchResult> {
    proptest::collection::vec((1u32..400, 0u8..2), k).prop_map(move |entries| {
        let mut t = SearchResult::empty(k);
        let mut nodes: Vec<u32> = Vec::new();
        let mut score = Score::ZERO;
        for (i, (sc, present)) in entries.into_iter().enumerate() {
            nodes.push(base + i as u32);
            score += Score::from(sc);
            if present == 1 {
                t.offer(nodes.clone(), score);
            }
        }
        t
    })
}

// ---------- algorithm correctness ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn algorithms_match_oracle(g in graph_strategy(12), k in 1usize..12) {
        let want = exhaustive(&g, k);
        for (name, got) in [
            ("astar", div_astar(&g, k)),
            ("dp", div_dp(&g, k)),
            ("cut", div_cut(&g, k)),
        ] {
            got.assert_well_formed(Some(&g));
            for i in 0..=k {
                prop_assert_eq!(
                    got.prefix_best_score(i),
                    want.prefix_best_score(i),
                    "{} at size {}", name, i
                );
            }
        }
    }

    #[test]
    fn solutions_are_independent_sets(g in graph_strategy(14), k in 1usize..10) {
        let r = div_cut(&g, k);
        for (_, sol) in r.iter() {
            prop_assert!(g.is_independent_set(&sol.nodes()));
            prop_assert!(g.score_of(&sol.nodes()).approx_eq(sol.score(), 1e-9));
        }
    }

    #[test]
    fn greedy_never_beats_exact(g in graph_strategy(14), k in 1usize..10) {
        let (_, greedy_score) = greedy(&g, k);
        let exact = div_astar(&g, k).best().score();
        prop_assert!(greedy_score <= exact);
    }

    #[test]
    fn compression_preserves_prefix_optima(g in graph_strategy(12), k in 1usize..8) {
        let kept = compress(&g);
        let (cg, map) = g.induced_subgraph(&kept);
        let want = exhaustive(&g, k);
        let got = exhaustive(&cg, k).map_nodes(&map);
        for i in 0..=k {
            prop_assert_eq!(got.prefix_best_score(i), want.prefix_best_score(i));
        }
        // And compressed solutions remain valid in the original graph.
        for (_, sol) in got.iter() {
            prop_assert!(g.is_independent_set(&sol.nodes()));
        }
    }

    #[test]
    fn components_partition_the_graph(g in graph_strategy(20)) {
        let comps = connected_components(&g);
        let mut seen = vec![false; g.len()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v as usize], "node in two components");
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // No edge crosses components.
        for comp in &comps {
            let set: std::collections::HashSet<_> = comp.iter().copied().collect();
            for &v in comp {
                for &nb in g.neighbors(v) {
                    prop_assert!(set.contains(&nb));
                }
            }
        }
    }
}

// ---------- the bitset kernel (DESIGN.md §7) ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `DenseNodeSet` and the persistent sorted-vec `NodeSet` agree on
    /// union / extend / len / to_sorted_vec across random op sequences.
    #[test]
    fn dense_and_persistent_nodesets_agree(seed in 0u64..1_000_000) {
        const UNIVERSE: usize = 300;
        let mut rng = divtopk::core::rng::Pcg::new(seed);
        let mut unused: Vec<u32> = (0..UNIVERSE as u32).collect();
        rng.shuffle(&mut unused);
        let mut persistent = NodeSet::empty();
        let mut dense = DenseNodeSet::new(UNIVERSE);
        for _ in 0..(1 + rng.below(40)) {
            if unused.is_empty() {
                break;
            }
            if rng.chance(0.6) {
                // Extend with one fresh node.
                let v = unused.pop().unwrap();
                persistent = NodeSet::extend(&persistent, v);
                prop_assert!(dense.insert(v));
            } else {
                // Union with a disjoint batch of fresh nodes.
                let take = (1 + rng.below(8) as usize).min(unused.len());
                let batch: Vec<u32> = unused.split_off(unused.len() - take);
                persistent = NodeSet::join(&persistent, &NodeSet::from_vec(batch.clone()));
                dense.union_with(&DenseNodeSet::from_nodes(UNIVERSE, batch));
            }
            prop_assert_eq!(persistent.len(), dense.len());
            prop_assert_eq!(persistent.to_sorted_vec(), dense.to_sorted_vec());
        }
    }

    /// Disjointness answered by word ops matches the sorted-vec answer.
    #[test]
    fn dense_disjointness_matches_sorted_vec(seed in 0u64..1_000_000) {
        const UNIVERSE: usize = 200;
        let mut rng = divtopk::core::rng::Pcg::new(seed ^ 0xD15);
        let pick = |rng: &mut divtopk::core::rng::Pcg| -> Vec<u32> {
            (0..UNIVERSE as u32).filter(|_| rng.chance(0.05)).collect()
        };
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        let da = DenseNodeSet::from_nodes(UNIVERSE, a.iter().copied());
        let db = DenseNodeSet::from_nodes(UNIVERSE, b.iter().copied());
        let expect = !a.iter().any(|v| b.contains(v));
        prop_assert_eq!(da.is_disjoint(&db), expect);
        prop_assert_eq!(db.is_disjoint(&da), expect);
    }

    /// Post-kernel, every `div-astar` kernel mode (bitset, sorted-vec
    /// stamp, auto — and bitset without an adjacency bitmap) still matches
    /// the exhaustive oracle, and the three algorithms agree end to end.
    #[test]
    fn kernel_modes_match_oracle(g in graph_strategy(12), k in 1usize..10) {
        let want = exhaustive(&g, k);
        let mut stripped = g.clone();
        stripped.strip_adjacency_bitmap();
        let cases: [(&str, &DiversityGraph, KernelMode); 4] = [
            ("auto", &g, KernelMode::Auto),
            ("bitset", &g, KernelMode::Dense),
            ("sorted-vec", &g, KernelMode::Sparse),
            ("bitset/no-bitmap", &stripped, KernelMode::Dense),
        ];
        for (name, graph, kernel) in cases {
            let config = AStarConfig { kernel, ..AStarConfig::new() };
            let (got, _) =
                div_astar_configured(graph, k, &config, &SearchLimits::unlimited()).unwrap();
            got.assert_well_formed(Some(&g));
            for i in 0..=k {
                prop_assert_eq!(
                    got.prefix_best_score(i),
                    want.prefix_best_score(i),
                    "{} at size {}", name, i
                );
            }
        }
    }
}

// ---------- operator laws ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plus_is_commutative(a in table_strategy(6, 0), b in table_strategy(6, 100)) {
        let ab = combine_disjoint(&a, &b);
        let ba = combine_disjoint(&b, &a);
        for i in 0..=6 {
            prop_assert_eq!(ab.score(i), ba.score(i), "size {}", i);
        }
    }

    #[test]
    fn plus_is_associative(
        a in table_strategy(5, 0),
        b in table_strategy(5, 100),
        c in table_strategy(5, 200),
    ) {
        let l = combine_disjoint(&combine_disjoint(&a, &b), &c);
        let r = combine_disjoint(&a, &combine_disjoint(&b, &c));
        for i in 0..=5 {
            prop_assert_eq!(l.score(i), r.score(i), "size {}", i);
        }
    }

    #[test]
    fn otimes_is_commutative_and_associative(
        a in table_strategy(5, 0),
        b in table_strategy(5, 0),
        c in table_strategy(5, 0),
    ) {
        let ab = combine_alternative(&a, &b);
        let ba = combine_alternative(&b, &a);
        for i in 0..=5 {
            prop_assert_eq!(ab.score(i), ba.score(i));
        }
        let l = combine_alternative(&combine_alternative(&a, &b), &c);
        let r = combine_alternative(&a, &combine_alternative(&b, &c));
        for i in 0..=5 {
            prop_assert_eq!(l.score(i), r.score(i));
        }
    }

    #[test]
    fn plus_identity_is_empty_table(a in table_strategy(6, 0)) {
        let id = SearchResult::empty(6);
        let out = combine_disjoint(&a, &id);
        for i in 0..=6 {
            prop_assert_eq!(out.score(i), a.score(i));
        }
    }
}

// ---------- framework soundness ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming engine with early stopping returns the same optimum as
    /// offline materialization, for random cluster-similarity streams.
    #[test]
    fn early_stop_is_sound(
        seed in 0u64..10_000,
        n in 1usize..40,
        clusters in 1u32..8,
        k in 1usize..6,
    ) {
        let mut rng = divtopk::core::rng::Pcg::new(seed);
        let items: Vec<Scored<(u32, u32)>> = (0..n as u32)
            .map(|i| Scored::new((i, rng.below(clusters)), Score::from(rng.range(1, 1000))))
            .collect();
        let similar = |a: &(u32, u32), b: &(u32, u32)| a.1 == b.1;

        let (graph, _) = DiversityGraph::from_items(&items, |r| r.score, |a, b| similar(&a.item, &b.item));
        let want = exhaustive(&graph, k).best().score();

        // Incremental flavour.
        let inc = DivTopK::new(
            IncrementalVecSource::from_unsorted(items.clone()),
            similar,
            DivSearchConfig::new(k),
        ).run().unwrap();
        prop_assert_eq!(inc.total_score, want);

        // Bounding flavour (stream order = arrival order).
        let bnd = DivTopK::new(
            BoundingVecSource::new(items),
            similar,
            DivSearchConfig::new(k),
        ).run().unwrap();
        prop_assert_eq!(bnd.total_score, want);
    }
}

// ---------- text substrate ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jaccard_is_symmetric_and_bounded(
        a in proptest::collection::vec(0u32..50, 0..60),
        b in proptest::collection::vec(0u32..50, 0..60),
        w in proptest::collection::vec(0.0f64..5.0, 50),
    ) {
        let d1 = Document::from_tokens("a".into(), a);
        let d2 = Document::from_tokens("b".into(), b);
        let s12 = weighted_jaccard_with(&w, &d1, &d2);
        let s21 = weighted_jaccard_with(&w, &d2, &d1);
        prop_assert_eq!(s12, s21);
        prop_assert!((0.0..=1.0).contains(&s12));
        // Self-similarity is 1 unless the doc has zero total weight.
        let s11 = weighted_jaccard_with(&w, &d1, &d1);
        prop_assert!(s11 == 1.0 || s11 == 0.0);
    }

    #[test]
    fn tokenizer_roundtrip_properties(text in ".{0,200}") {
        let tokens = tokenize(&text);
        for t in &tokens {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.clone(), t.to_lowercase());
        }
    }

    #[test]
    fn document_signature_is_canonical(tokens in proptest::collection::vec(0u32..30, 0..80)) {
        let total = tokens.len() as u32;
        let d = Document::from_tokens("t".into(), tokens.clone());
        prop_assert_eq!(d.len, total);
        prop_assert!(d.terms.windows(2).all(|w| w[0].0 < w[1].0));
        let sum: u32 = d.terms.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, total);
        for &(t, c) in &d.terms {
            let direct = tokens.iter().filter(|&&x| x == t).count() as u32;
            prop_assert_eq!(c, direct);
        }
    }
}
