//! Cross-algorithm agreement: `div-astar` ≡ `div-dp` ≡ `div-cut` ≡ the
//! exhaustive oracle on every graph family, for every size prefix.
//!
//! These are the repo's strongest correctness tests: the three production
//! algorithms take completely different routes (plain A\*, component DP,
//! cptree decomposition with compression), so agreement across families —
//! random, clustered, paths, stars, bipartite-ish — leaves little room for
//! a shared bug.

use divtopk::core::exhaustive::exhaustive;
use divtopk::core::testgen;
use divtopk::*;

/// Asserts the prefix-max contract of all three algorithms against the
/// point-wise-exact oracle.
fn assert_all_agree(g: &DiversityGraph, k: usize, label: &str) {
    let want = exhaustive(g, k);
    let astar = div_astar(g, k);
    let dp = div_dp(g, k);
    let cut = div_cut(g, k);
    for (name, got) in [("astar", &astar), ("dp", &dp), ("cut", &cut)] {
        got.assert_well_formed(Some(g));
        for i in 0..=k {
            assert_eq!(
                got.prefix_best_score(i),
                want.prefix_best_score(i),
                "{label}: {name} disagrees at size {i}"
            );
        }
    }
    // All algorithms must also agree on the max feasible size *at least*
    // up to what the oracle proves feasible through prefix improvements.
    assert_eq!(astar.best().score(), want.best().score());
    assert_eq!(dp.best().score(), want.best().score());
    assert_eq!(cut.best().score(), want.best().score());
}

#[test]
fn random_sparse_graphs() {
    for seed in 0..20 {
        let g = testgen::random_graph(15, 0.1, seed);
        assert_all_agree(&g, 8, &format!("sparse seed {seed}"));
    }
}

#[test]
fn random_medium_graphs() {
    for seed in 0..20 {
        let g = testgen::random_graph(14, 0.35, 1000 + seed);
        assert_all_agree(&g, 7, &format!("medium seed {seed}"));
    }
}

#[test]
fn random_dense_graphs() {
    for seed in 0..15 {
        let g = testgen::random_graph(13, 0.75, 2000 + seed);
        assert_all_agree(&g, 13, &format!("dense seed {seed}"));
    }
}

#[test]
fn clustered_graphs() {
    let config = testgen::ClusterConfig {
        clusters: 3,
        cluster_size: 4,
        intra_p: 0.8,
        bridges: 3,
        singletons: 3,
    };
    for seed in 0..15 {
        let g = testgen::planted_clusters(&config, seed);
        assert_all_agree(&g, 8, &format!("clusters seed {seed}"));
    }
}

#[test]
fn path_graphs_all_k() {
    for n in [1usize, 2, 3, 6, 12, 18] {
        let g = testgen::path_graph(n, 77 + n as u64);
        for k in [1, 2, n / 2 + 1, n] {
            assert_all_agree(&g, k, &format!("path n={n} k={k}"));
        }
    }
}

#[test]
fn star_chains() {
    for m in [1usize, 3, 8] {
        let g = testgen::star_chain(m);
        assert_all_agree(&g, 2 * m + 1, &format!("star m={m}"));
    }
}

#[test]
fn complete_graphs_pick_single_best() {
    // K_n: only singletons are independent.
    for n in [2usize, 5, 9] {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        let scores = (0..n).map(|i| Score::from((n - i) as u32 * 10)).collect();
        let g = DiversityGraph::from_sorted_scores(scores, &edges);
        assert_all_agree(&g, n, &format!("K{n}"));
        assert_eq!(div_cut(&g, n).best().len(), 1);
    }
}

#[test]
fn edgeless_graphs_pick_top_k() {
    let scores = (0..12).map(|i| Score::from(100 - i as u32)).collect();
    let g = DiversityGraph::from_sorted_scores(scores, &[]);
    assert_all_agree(&g, 5, "edgeless");
    let r = div_dp(&g, 5);
    assert_eq!(r.best().nodes(), &[0, 1, 2, 3, 4]);
}

#[test]
fn duplicate_scores_tie_handling() {
    // All nodes share one score; answers may differ in witness but must
    // agree in value.
    for seed in 0..10 {
        let mut edges = Vec::new();
        let mut rng = divtopk::core::rng::Pcg::new(seed);
        for i in 0..12u32 {
            for j in (i + 1)..12 {
                if rng.chance(0.3) {
                    edges.push((i, j));
                }
            }
        }
        let scores = vec![Score::from(5u32); 12];
        let g = DiversityGraph::from_sorted_scores(scores, &edges);
        assert_all_agree(&g, 6, &format!("ties seed {seed}"));
    }
}

#[test]
fn k_exceeding_graph_size() {
    let g = testgen::random_graph(8, 0.3, 42);
    assert_all_agree(&g, 20, "k > n");
}

#[test]
fn larger_graphs_algorithms_agree_with_each_other() {
    // Too big for the oracle; the three algorithms must still agree.
    let config = testgen::ClusterConfig {
        clusters: 6,
        cluster_size: 8,
        intra_p: 0.7,
        bridges: 6,
        singletons: 8,
    };
    for seed in 0..5 {
        let g = testgen::planted_clusters(&config, 500 + seed);
        let k = 15;
        let dp = div_dp(&g, k);
        let cut = div_cut(&g, k);
        for i in 0..=k {
            assert_eq!(
                dp.prefix_best_score(i),
                cut.prefix_best_score(i),
                "seed {seed} size {i}"
            );
        }
    }
}
