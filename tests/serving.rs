//! End-to-end tests for the serving binary path: the TCP server under
//! concurrent clients with a live writer (satellite: stress), and the
//! wire protocol under hostile bytes (satellite: robustness).
//!
//! * **Stress**: N client threads fire searches at a running server while
//!   a writer thread adds and deletes documents. Every `Hits` response
//!   must equal — content-for-content, score bits included — the answer
//!   some single snapshot generation gives for that query (no torn reads,
//!   no cross-generation mixing); overload draws the typed backpressure
//!   rejection; every request gets *some* response (client read timeouts
//!   turn a hang into a failure).
//! * **Robustness**: truncations at every frame offset, oversized and
//!   zero length prefixes, garbage tags, and mid-frame disconnects each
//!   produce a typed error or a clean close — and the server keeps
//!   serving afterwards. Mirrors PR 5's truncate-every-offset sweep one
//!   layer up, at the frame boundary.

use divtopk::ExactAlgorithm;
use divtopk::core::rng::Pcg;
use divtopk::engine::prelude::*;
use divtopk::engine::proto::{self, Request, Response};
use divtopk::text::prelude::*;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Client-side guard: any server hang surfaces as a test failure, not a
/// stuck suite.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    stream.set_write_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    stream.set_nodelay(true).ok();
    stream
}

fn roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
    proto::write_frame(stream, &proto::encode_request(request).unwrap()).expect("send");
    let frame = proto::read_frame(stream)
        .expect("recv")
        .expect("server closed unexpectedly");
    proto::decode_response(&frame).expect("decode")
}

/// Terms with mid-sized posting lists in the base corpus.
fn interesting_terms(corpus: &Corpus, count: usize) -> Vec<TermId> {
    let index = InvertedIndex::build(corpus);
    let mut terms: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| (6..=60).contains(&index.postings(t).len()))
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(index.postings(t).len()));
    terms.truncate(count);
    terms
}

// ------------------------------------------------------------------ stress

/// The comparable content of a served answer: doc ids with score bits,
/// plus the total-score bits — bit-exact equality, no float tolerance.
type AnswerKey = (Vec<(u32, u64)>, u64);

fn key_of_output(out: &SearchOutput) -> AnswerKey {
    (
        out.hits
            .iter()
            .map(|h| (h.doc, h.score.get().to_bits()))
            .collect(),
        out.total_score.get().to_bits(),
    )
}

fn key_of_wire(hits: &divtopk::engine::proto::WireHits) -> AnswerKey {
    (
        hits.hits
            .iter()
            .map(|&(doc, score)| (doc, score.to_bits()))
            .collect(),
        hits.total_score.to_bits(),
    )
}

/// The scripted mutation log the writer replays: deterministic, so a twin
/// engine can precompute every generation's reference answers.
struct MutationScript {
    batches: Vec<(Vec<Document>, Vec<DocId>)>,
}

fn build_script(base_docs: usize, donor: &Corpus, rounds: usize) -> MutationScript {
    let mut rng = Pcg::new(0x57726974);
    let mut next = base_docs as DocId;
    let batches = (0..rounds)
        .map(|_| {
            let adds: Vec<Document> = (next..next + 6).map(|d| donor.doc(d).clone()).collect();
            next += 6;
            let dels: Vec<DocId> = (0..3).map(|_| rng.below(next)).collect();
            (adds, dels)
        })
        .collect();
    MutationScript { batches }
}

#[test]
fn concurrent_clients_with_live_writer_see_single_generation_answers() {
    let base_docs = 220usize;
    let rounds = 4usize;
    let donor = generate(
        &SynthConfig {
            near_dup_prob: 0.35,
            ..SynthConfig::tiny().with_seed(71)
        }
        .with_num_docs(base_docs + rounds * 6),
    );
    let mut builder = CorpusBuilder::with_synthetic_vocab(donor.num_terms());
    for d in 0..base_docs as DocId {
        builder.add_document(donor.doc(d).clone());
    }
    let base = builder.build();
    let terms = interesting_terms(&base, 3);
    assert!(terms.len() >= 2, "base corpus has too few usable terms");
    let script = build_script(base_docs, &donor, rounds);

    // The wire query set and the exact options the server will build.
    let (k, tau, bound_decay) = (5u32, 0.5f64, 0.005f64);
    let options = SearchOptions::new(k as usize)
        .with_tau(tau)
        .with_bound_decay(bound_decay)
        .with_mode(DiversifyMode::Exact(ExactAlgorithm::Cut));
    let queries: Vec<Query> = terms
        .iter()
        .map(|&t| Query::Scan(t))
        .chain([Query::Keywords(KeywordQuery {
            terms: vec![terms[0], terms[1]],
        })])
        .collect();

    // Twin engine: replay the script generation by generation, recording
    // each query's reference answer at every snapshot the server can
    // possibly serve (each add and each delete bumps the generation).
    let config = EngineConfig::new(2).with_cache_capacity(0);
    let reference = Engine::new(base.clone(), config.clone());
    let mut by_generation: Vec<HashMap<usize, AnswerKey>> = Vec::new();
    let mut record = |engine: &Engine| {
        let answers = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (i, key_of_output(&engine.search(q, &options).unwrap())))
            .collect();
        by_generation.push(answers);
    };
    record(&reference);
    for (adds, dels) in &script.batches {
        reference.add_docs(adds.clone());
        record(&reference);
        reference.delete_docs(dels);
        record(&reference);
    }
    assert_eq!(by_generation.len(), 1 + 2 * rounds);

    // The live side: same base, same config, real TCP server.
    let engine = Arc::new(Engine::new(base, config));
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
        },
    )
    .expect("server start");
    let addr = server.addr().to_string();

    let unmatched = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let addr = addr.clone();
            let queries = queries.clone();
            let by_generation = by_generation.clone();
            let unmatched = Arc::clone(&unmatched);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let mut stream = connect(&addr);
                for round in 0..30u64 {
                    let which = ((c + round) % queries.len() as u64) as usize;
                    let request = Request::Search {
                        query: queries[which].clone(),
                        k,
                        tau,
                        bound_decay,
                        mode: DiversifyMode::exact(),
                    };
                    match roundtrip(&mut stream, &request) {
                        Response::Hits(hits) => {
                            served.fetch_add(1, Ordering::Relaxed);
                            let got = key_of_wire(&hits);
                            // The answer must be exactly some single
                            // generation's answer — never a mix.
                            if !by_generation.iter().any(|g| g[&which] == got) {
                                unmatched.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Response::Overloaded { .. } => {} // typed, legal
                        other => panic!("client {c}: unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();

    // The writer races the clients through the same scripted mutations.
    let writer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            for (adds, dels) in script.batches {
                std::thread::sleep(Duration::from_millis(5));
                engine.add_docs(adds);
                std::thread::sleep(Duration::from_millis(5));
                engine.delete_docs(&dels);
            }
        })
    };
    for client in clients {
        client.join().expect("client thread");
    }
    writer.join().expect("writer thread");
    assert_eq!(
        unmatched.load(Ordering::Relaxed),
        0,
        "a response matched no single generation's reference answer"
    );
    assert!(served.load(Ordering::Relaxed) > 0, "nothing was served");
    // The server ended on the final generation: a fresh query now matches
    // the final reference exactly.
    let mut stream = connect(&addr);
    match roundtrip(
        &mut stream,
        &Request::Search {
            query: queries[0].clone(),
            k,
            tau,
            bound_decay,
            mode: DiversifyMode::exact(),
        },
    ) {
        Response::Hits(hits) => {
            assert_eq!(
                key_of_wire(&hits),
                by_generation.last().unwrap()[&0],
                "final answer diverged from the final generation"
            );
        }
        other => panic!("final query: unexpected {other:?}"),
    }
}

#[test]
fn overload_draws_typed_backpressure_and_never_hangs() {
    let corpus = generate(
        &SynthConfig {
            near_dup_prob: 0.5, // dense similarity: searches do real work
            ..SynthConfig::tiny().with_seed(81)
        }
        .with_num_docs(400),
    );
    let terms = interesting_terms(&corpus, 1);
    let engine = Engine::new(
        corpus,
        EngineConfig::new(2).with_cache_capacity(0), // every request searches
    );
    let server = Server::start(
        Arc::new(engine),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1, // concurrency hard cap = 2
        },
    )
    .expect("server start");
    let addr = server.addr().to_string();

    // 16 clients release one search each at the same instant: at most 2
    // can be in flight, so the first wave must reject most of them.
    let barrier = Arc::new(std::sync::Barrier::new(16));
    let hits = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..16)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let hits = Arc::clone(&hits);
            let overloaded = Arc::clone(&overloaded);
            let term = terms[0];
            std::thread::spawn(move || {
                let mut stream = connect(&addr);
                let request = Request::Search {
                    query: Query::Scan(term),
                    k: 8,
                    tau: 0.3,
                    bound_decay: 0.005,
                    mode: DiversifyMode::exact(),
                };
                barrier.wait();
                match roundtrip(&mut stream, &request) {
                    Response::Hits(_) => hits.fetch_add(1, Ordering::Relaxed),
                    Response::Overloaded { queue_capacity } => {
                        assert_eq!(queue_capacity, 1);
                        overloaded.fetch_add(1, Ordering::Relaxed)
                    }
                    other => panic!("unexpected {other:?}"),
                };
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread"); // a hang trips the timeout
    }
    let (hits, overloaded) = (
        hits.load(Ordering::Relaxed),
        overloaded.load(Ordering::Relaxed),
    );
    assert_eq!(hits + overloaded, 16, "every request drew a response");
    assert!(hits >= 1, "nothing was served under burst");
    assert!(
        overloaded >= 1,
        "burst of 16 into capacity 2 never rejected"
    );
    // Backpressure is load shedding, not failure: the next request works,
    // and stats stayed reachable under pressure (served inline).
    let mut stream = connect(&addr);
    match roundtrip(&mut stream, &Request::Stats) {
        Response::Stats(stats) => {
            assert_eq!(stats.overloaded, overloaded);
            assert_eq!(stats.search_count, hits);
        }
        other => panic!("stats: unexpected {other:?}"),
    }
    match roundtrip(
        &mut stream,
        &Request::Search {
            query: Query::Scan(terms[0]),
            k: 3,
            tau: 0.5,
            bound_decay: 0.005,
            mode: DiversifyMode::exact(),
        },
    ) {
        Response::Hits(_) => {}
        other => panic!("post-overload query: unexpected {other:?}"),
    }
}

// -------------------------------------------------------------- robustness

fn tiny_server() -> (Server, String) {
    let corpus = generate(&SynthConfig::tiny().with_seed(91).with_num_docs(120));
    let server = Server::start(
        Arc::new(Engine::new(corpus, EngineConfig::new(2))),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server start");
    let addr = server.addr().to_string();
    (server, addr)
}

fn assert_ping_works(addr: &str) {
    let mut stream = connect(addr);
    assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
}

/// A typed protocol error, or a clean close — never a hang, never junk.
fn read_error_or_close(stream: &mut TcpStream) {
    match proto::read_frame(stream) {
        Ok(Some(frame)) => match proto::decode_response(&frame).expect("decode") {
            Response::Error {
                code: proto::ErrorCode::Protocol,
                ..
            } => {}
            other => panic!("expected a protocol error, got {other:?}"),
        },
        Ok(None) => {}                      // clean close
        Err(proto::ProtoError::Io(_)) => {} // reset mid-report
        Err(e) => panic!("client-side decode failure: {e}"),
    }
}

#[test]
fn truncation_at_every_frame_offset_leaves_the_server_serving() {
    let (_server, addr) = tiny_server();
    // A representative full frame: header + search payload.
    let payload = proto::encode_request(&Request::Search {
        query: Query::Keywords(KeywordQuery {
            terms: vec![3, 1, 4],
        }),
        k: 5,
        tau: 0.5,
        bound_decay: 0.005,
        mode: DiversifyMode::exact(),
    })
    .unwrap();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    // Every proper prefix is a mid-frame disconnect (offset 0 is simply a
    // clean open-then-close).
    for cut in 0..frame.len() {
        let mut stream = connect(&addr);
        stream.write_all(&frame[..cut]).expect("partial write");
        stream.shutdown(std::net::Shutdown::Write).ok();
        if cut == 0 {
            assert!(
                proto::read_frame(&mut stream)
                    .expect("clean close")
                    .is_none(),
                "offset 0 must be a clean close"
            );
        } else if cut < 4 || cut < frame.len() {
            read_error_or_close(&mut stream);
        }
    }
    // The sweep must not have taken the server down.
    assert_ping_works(&addr);
    let mut stream = connect(&addr);
    match roundtrip(&mut stream, &Request::Stats) {
        Response::Stats(stats) => assert!(
            stats.protocol_errors as usize >= frame.len() - 1,
            "every truncation should count as a protocol error"
        ),
        other => panic!("stats: unexpected {other:?}"),
    }
}

#[test]
fn oversized_and_zero_length_prefixes_are_rejected_before_allocation() {
    let (_server, addr) = tiny_server();
    // A hostile 4 GiB length prefix: typed rejection (checked before the
    // payload buffer is sized — the unit suite proves no allocation), and
    // the connection closes because framing is unrecoverable.
    let mut stream = connect(&addr);
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    read_error_or_close(&mut stream);
    // A zero-length frame: same contract.
    let mut stream = connect(&addr);
    stream.write_all(&0u32.to_le_bytes()).unwrap();
    read_error_or_close(&mut stream);
    assert_ping_works(&addr);
}

#[test]
fn garbage_payloads_get_typed_errors_and_the_connection_keeps_serving() {
    let (_server, addr) = tiny_server();
    let mut stream = connect(&addr);
    // A well-framed frame full of garbage: unknown tag → typed error, and
    // because the frame boundary held, the *same connection* keeps going.
    proto::write_frame(&mut stream, &[0x7F, 0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    let frame = proto::read_frame(&mut stream).expect("recv").expect("open");
    match proto::decode_response(&frame).expect("decode") {
        Response::Error {
            code: proto::ErrorCode::Protocol,
            ..
        } => {}
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Still the same stream:
    assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
    // A structurally broken search (truncated payload inside a valid
    // frame): typed error, connection still usable.
    proto::write_frame(&mut stream, &[0x02, 0x00]).unwrap();
    match proto::decode_response(&proto::read_frame(&mut stream).unwrap().unwrap()).unwrap() {
        Response::Error {
            code: proto::ErrorCode::Protocol,
            ..
        } => {}
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
    assert_ping_works(&addr);
}

/// Hand-crafted search payload (scan query for term 0, k=3, τ=0.5,
/// decay=0.005) ending in the given mode selector + parameter bytes —
/// the typed `Request` can no longer express a hostile selector, so
/// these tests speak raw bytes.
fn raw_search_payload(selector: u8, params: &[u8]) -> Vec<u8> {
    let mut payload = vec![0x02u8, 0x00]; // TAG_SEARCH, QUERY_SCAN
    payload.extend_from_slice(&0u32.to_le_bytes()); // term
    payload.extend_from_slice(&3u32.to_le_bytes()); // k
    payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes()); // τ
    payload.extend_from_slice(&0.005f64.to_bits().to_le_bytes()); // decay
    payload.push(selector);
    payload.extend_from_slice(params);
    payload
}

#[test]
fn unknown_mode_selector_is_a_typed_error_not_a_crash() {
    let (_server, addr) = tiny_server();
    let mut stream = connect(&addr);
    proto::write_frame(&mut stream, &raw_search_payload(99, &[])).unwrap();
    match proto::decode_response(&proto::read_frame(&mut stream).unwrap().unwrap()).unwrap() {
        Response::Error {
            code: proto::ErrorCode::Protocol,
            message,
        } => assert!(message.contains("selector"), "{message}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
}

#[test]
fn out_of_range_mode_parameters_are_typed_errors_over_live_tcp() {
    let (_server, addr) = tiny_server();
    let mut stream = connect(&addr);
    // MMR (selector 4) with λ = NaN, and window (selector 5) with a
    // zero window — both must come back as typed protocol errors while
    // the connection keeps serving.
    let bad_mmr = raw_search_payload(4, &f64::NAN.to_bits().to_le_bytes());
    let mut window_params = Vec::new();
    window_params.extend_from_slice(&0u32.to_le_bytes());
    window_params.extend_from_slice(&2u32.to_le_bytes());
    window_params.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
    let bad_window = raw_search_payload(5, &window_params);
    for payload in [bad_mmr, bad_window] {
        proto::write_frame(&mut stream, &payload).unwrap();
        match proto::decode_response(&proto::read_frame(&mut stream).unwrap().unwrap()).unwrap() {
            Response::Error {
                code: proto::ErrorCode::Protocol,
                ..
            } => {}
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
    assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
}
