//! Cold-start persistence suite (DESIGN.md §10): a loaded snapshot must
//! serve **byte-identically** to the engine that saved it, and corrupt
//! input must come back as a typed [`SnapshotError`] — never a panic.
//!
//! Byte-equality is pinned the same way PR 3/4 pinned shards and
//! segments: full [`SearchOutput`] equality (hits, total score, metrics —
//! early-stop point included) between the in-memory state and the loaded
//! state, plus the data-level `verify_rebuild_equivalence` oracle run
//! directly on the loaded [`SegmentedIndex`]. The corruption half
//! truncates a valid snapshot at every byte offset and flips a bit in
//! every byte, asserting a typed error each time.

use divtopk::engine::{Engine, EngineConfig, Query};
use divtopk::text::persist::{self, SnapshotError};
use divtopk::text::prelude::*;
use divtopk_core::rng::Pcg;
use std::path::PathBuf;

fn base(n: usize) -> Corpus {
    generate(&SynthConfig {
        num_docs: n,
        ..SynthConfig::tiny()
    })
}

fn busy_term(c: &Corpus) -> TermId {
    (0..c.num_terms() as TermId)
        .max_by_key(|&t| c.doc_freq(t))
        .unwrap()
}

fn ta_query(c: &Corpus) -> KeywordQuery {
    let mut terms: Vec<TermId> = (0..c.num_terms() as TermId)
        .filter(|&t| c.doc_freq(t) >= 6)
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(c.doc_freq(t)));
    terms.truncate(2);
    assert_eq!(terms.len(), 2, "need two busy terms");
    KeywordQuery { terms }
}

/// A mutated serving state: base epoch + live adds + deletes + one
/// compaction — segments, tombstones, and a bumped compaction counter
/// all present in what gets persisted.
fn mutated_state() -> SegmentedIndex {
    let corpus = base(120);
    let donor = generate(&SynthConfig {
        num_docs: 160,
        ..SynthConfig::tiny()
    });
    let mut seg = SegmentedIndex::build_partitioned(corpus, 2);
    seg.add_docs((120..136u32).map(|d| donor.doc(d).clone()).collect());
    seg.add_docs((136..150u32).map(|d| donor.doc(d).clone()).collect());
    seg.delete_docs(&[0, 7, 121, 140]);
    assert!(seg.compact() > 0);
    seg
}

/// A deliberately small serving state (tiny vocabulary, a dozen docs)
/// whose snapshot is a few KB — the corruption sweeps below are
/// quadratic (every offset × a full parse), so they run on this, not on
/// [`mutated_state`].
fn small_state() -> SegmentedIndex {
    let mut b = Corpus::builder();
    b.add_text("storm-1", "storm surge floods coastal city downtown");
    b.add_text("storm-2", "storm surge floods coastal city harbor");
    b.add_text("sports", "cup final penalty shootout drama");
    b.add_text("markets", "stocks rally earnings beat forecast");
    for i in 0..8 {
        b.add_text(&format!("f{i}"), "miscellaneous archive background noise");
    }
    let mut seg = SegmentedIndex::build_partitioned(b.build(), 2);
    seg.add_text("storm-3", "storm surge evacuation ordered");
    seg.add_text("markets-2", "stocks slide forecast cut");
    seg.delete_docs(&[1, 12]);
    assert!(seg.compact() > 0);
    seg
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("divtopk-{}-{name}", std::process::id()))
}

#[test]
fn segmented_round_trip_serves_byte_identically() {
    let seg = mutated_state();
    let bytes = persist::segmented_to_bytes(&seg, 7);
    let (loaded, generation) = persist::segmented_from_bytes(&bytes).unwrap();
    assert_eq!(generation, 7);
    assert_eq!(loaded.num_segments(), seg.num_segments());
    assert_eq!(loaded.tombstones(), seg.tombstones());
    assert_eq!(loaded.compactions(), seg.compactions());
    // The PR 4 oracle holds on the *loaded* state directly.
    loaded.verify_rebuild_equivalence().unwrap();
    // Scan reads are byte-equal — hits, total score, and every metric,
    // early-stop point included.
    let term = busy_term(seg.corpus());
    for k in [1usize, 5, 10] {
        let options = SearchOptions::new(k).with_tau(0.4);
        assert_eq!(
            seg.search_scan(term, &options).unwrap(),
            loaded.search_scan(term, &options).unwrap(),
            "scan k={k}"
        );
    }
    // TA reads too: the loaded segments are bit-identical and in the same
    // order, so the whole pull sequence (and with it the output struct)
    // reproduces exactly.
    let query = ta_query(seg.corpus());
    let options = SearchOptions::new(5).with_tau(0.4);
    assert_eq!(
        seg.search_ta(&query, &options).unwrap(),
        loaded.search_ta(&query, &options).unwrap()
    );
}

#[test]
fn random_mutation_scripts_round_trip() {
    let mut rng = Pcg::new(0x5EED_CAFE);
    for trial in 0..5 {
        let donor = generate(&SynthConfig {
            num_docs: 200,
            ..SynthConfig::tiny()
        });
        let mut builder = CorpusBuilder::with_synthetic_vocab(donor.num_terms());
        for d in 0..80u32 {
            builder.add_document(donor.doc(d).clone());
        }
        let mut seg = SegmentedIndex::build(builder.build());
        let mut next = 80u32;
        for _ in 0..12 {
            match rng.below(3) {
                0 if (next as usize) < 200 => {
                    let take = (1 + rng.below(8)).min(200 - next);
                    let batch: Vec<Document> =
                        (next..next + take).map(|d| donor.doc(d).clone()).collect();
                    seg.add_docs(batch);
                    next += take;
                }
                1 => {
                    let victims: Vec<DocId> =
                        (0..3).map(|_| rng.below(seg.num_docs() as u32)).collect();
                    seg.delete_docs(&victims);
                }
                _ => {
                    seg.compact();
                }
            }
        }
        let bytes = persist::segmented_to_bytes(&seg, trial);
        let (loaded, generation) = persist::segmented_from_bytes(&bytes).unwrap();
        assert_eq!(generation, trial);
        loaded.verify_rebuild_equivalence().unwrap();
        let term = busy_term(seg.corpus());
        let options = SearchOptions::new(5).with_tau(0.5);
        assert_eq!(
            seg.search_scan(term, &options).unwrap(),
            loaded.search_scan(term, &options).unwrap(),
            "trial {trial}"
        );
    }
}

#[test]
fn engine_snapshot_round_trip_preserves_generation_and_answers() {
    let corpus = base(150);
    let donor = generate(&SynthConfig {
        num_docs: 180,
        ..SynthConfig::tiny()
    });
    let engine = Engine::new(corpus, EngineConfig::new(2).with_threads(2));
    engine.add_docs((150..165u32).map(|d| donor.doc(d).clone()).collect());
    engine.delete_docs(&[3, 151]);
    engine.compact();
    let generation = engine.generation();
    assert!(generation >= 2);

    let path = temp_path("engine.snapshot");
    let written = engine.save_snapshot(&path).unwrap();
    assert!(written > 0);
    let loaded = Engine::load_snapshot(&path, &EngineConfig::new(1).with_threads(2)).unwrap();
    std::fs::remove_file(&path).unwrap();

    // The generation resumes; process-local counters start over.
    assert_eq!(loaded.generation(), generation);
    let stats = loaded.stats();
    assert_eq!((stats.queries, stats.cache_entries), (0, 0));
    assert_eq!(stats.segments, engine.stats().segments);
    assert_eq!(stats.tombstones, engine.stats().tombstones);
    loaded.verify_rebuild_equivalence().unwrap();

    // Every query class answers byte-identically to the saved engine.
    let term = busy_term(&engine.corpus());
    let query = ta_query(&engine.corpus());
    for k in [1usize, 4, 8] {
        let options = SearchOptions::new(k).with_tau(0.5);
        assert_eq!(
            engine.search(&Query::Scan(term), &options).unwrap(),
            loaded.search(&Query::Scan(term), &options).unwrap(),
            "scan k={k}"
        );
        assert_eq!(
            engine
                .search(&Query::Keywords(query.clone()), &options)
                .unwrap(),
            loaded
                .search(&Query::Keywords(query.clone()), &options)
                .unwrap(),
            "ta k={k}"
        );
    }
}

#[test]
fn loaded_engine_keeps_mutating_from_where_it_stood() {
    let engine = Engine::new(base(100), EngineConfig::new(2).with_threads(1));
    engine.delete_docs(&[5]);
    let path = temp_path("resume.snapshot");
    engine.save_snapshot(&path).unwrap();
    let loaded = Engine::load_snapshot(&path, &EngineConfig::default()).unwrap();
    std::fs::remove_file(&path).unwrap();
    let donor = generate(&SynthConfig {
        num_docs: 120,
        ..SynthConfig::tiny()
    });
    let range = loaded.add_docs((100..110u32).map(|d| donor.doc(d).clone()).collect());
    assert_eq!(range, 100..110);
    assert_eq!(loaded.generation(), engine.generation() + 1);
    assert_eq!(loaded.delete_docs(&[105]), 1);
    loaded.compact();
    loaded.verify_rebuild_equivalence().unwrap();
}

#[test]
fn corpus_and_index_file_round_trips() {
    let corpus = base(60);
    let index = InvertedIndex::build(&corpus);
    let cpath = temp_path("corpus.snapshot");
    let ipath = temp_path("index.snapshot");
    persist::save_corpus(&cpath, &corpus).unwrap();
    persist::save_index(&ipath, &index).unwrap();
    let lcorpus = persist::load_corpus(&cpath).unwrap();
    let lindex = persist::load_index(&ipath).unwrap();
    std::fs::remove_file(&cpath).unwrap();
    std::fs::remove_file(&ipath).unwrap();
    assert_eq!(lcorpus.docs(), corpus.docs());
    for t in 0..corpus.num_terms() as TermId {
        assert_eq!(lcorpus.idf(t).to_bits(), corpus.idf(t).to_bits());
        let (a, b) = (index.postings(t), lindex.postings(t));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                (x.doc, x.tf, x.partial.to_bits()),
                (y.doc, y.tf, y.partial.to_bits())
            );
        }
    }
    // A fresh searcher over the loaded pair answers byte-identically.
    let term = busy_term(&corpus);
    let options = SearchOptions::new(4).with_tau(0.5);
    let want = DiversifiedSearcher::new(&corpus, &index)
        .search_scan(term, &options)
        .unwrap();
    let got = DiversifiedSearcher::new(&lcorpus, &lindex)
        .search_scan(term, &options)
        .unwrap();
    assert_eq!(want, got);
}

/// Walks the container structure of a valid snapshot and returns every
/// section boundary offset (header end, then after each section header
/// and each payload).
fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![8, 12, 16, 20]; // magic, version, kind, count
    let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let mut pos = 20;
    for _ in 0..count {
        pos += 4; // tag
        let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8 + 4; // len + crc
        offsets.push(pos);
        pos += len;
        offsets.push(pos);
    }
    assert_eq!(pos, bytes.len(), "boundary walk must cover the whole file");
    offsets
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let seg = small_state();
    let bytes = persist::segmented_to_bytes(&seg, 1);
    // Every section boundary (the headline corruption mode)…
    for &cut in &section_boundaries(&bytes) {
        if cut == bytes.len() {
            continue;
        }
        let err = persist::segmented_from_bytes(&bytes[..cut])
            .expect_err("truncated snapshot must not load");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::Malformed { .. }
            ),
            "boundary {cut}: unexpected error {err:?}"
        );
    }
    // …and, since parses are cheap, literally every prefix.
    for cut in 0..bytes.len() {
        assert!(
            persist::segmented_from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not load"
        );
    }
}

#[test]
fn bit_flips_in_every_byte_are_typed_errors() {
    let seg = small_state();
    let mut bytes = persist::segmented_to_bytes(&seg, 1);
    for i in 0..bytes.len() {
        let mask = 1u8 << (i % 8);
        bytes[i] ^= mask;
        assert!(
            persist::segmented_from_bytes(&bytes).is_err(),
            "flip at byte {i} must not load"
        );
        bytes[i] ^= mask;
    }
    // The pristine buffer still loads — the loop restored every byte.
    persist::segmented_from_bytes(&bytes).unwrap();
}

#[test]
fn wrong_format_version_fixture_is_rejected() {
    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/wrong_version.snapshot");
    let bytes = std::fs::read(&fixture).expect("checked-in fixture");
    match persist::segmented_from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found: 9 }) => {}
        other => panic!("expected UnsupportedVersion {{ found: 9 }}, got {other:?}"),
    }
    // The file-level entry points agree.
    assert!(matches!(
        persist::load_corpus(&fixture),
        Err(SnapshotError::UnsupportedVersion { found: 9 })
    ));
    assert!(matches!(
        Engine::load_snapshot(&fixture, &EngineConfig::default()),
        Err(SnapshotError::UnsupportedVersion { found: 9 })
    ));
}

#[test]
fn missing_file_is_an_io_error() {
    let path = temp_path("does-not-exist.snapshot");
    assert!(matches!(
        Engine::load_snapshot(&path, &EngineConfig::default()),
        Err(SnapshotError::Io(_))
    ));
    assert!(matches!(
        persist::load_corpus(&path),
        Err(SnapshotError::Io(_))
    ));
}

#[test]
fn snapshot_error_display_is_informative() {
    let seg = small_state();
    let bytes = persist::segmented_to_bytes(&seg, 1);
    let err = persist::segmented_from_bytes(&bytes[..10]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("truncated"), "got: {msg}");
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    let msg = persist::segmented_from_bytes(&flipped)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("checksum mismatch"), "got: {msg}");
}
