//! Cold-start persistence suite (DESIGN.md §14): a loaded snapshot must
//! serve **byte-identically** to the engine that saved it, and corrupt
//! input must come back as a typed [`SnapshotError`] — never a panic.
//!
//! Byte-equality is pinned the same way PR 3/4 pinned shards and
//! segments: full [`SearchOutput`] equality (hits, total score, metrics —
//! early-stop point included) between the in-memory state and the loaded
//! state, plus the data-level `verify_rebuild_equivalence` oracle run
//! directly on the loaded [`SegmentedIndex`]. The corruption half covers
//! the multi-file layout: every file of a valid snapshot directory is
//! truncated at every byte offset and bit-flipped in every byte, and
//! cross-file inconsistencies (a manifest naming a missing file, files
//! swapped between names) are asserted typed as well.

use divtopk::engine::{Engine, EngineConfig, Query};
use divtopk::text::persist::{self, SnapshotError};
use divtopk::text::prelude::*;
use divtopk_core::rng::Pcg;
use std::path::PathBuf;

fn base(n: usize) -> Corpus {
    generate(&SynthConfig {
        num_docs: n,
        ..SynthConfig::tiny()
    })
}

fn busy_term(c: &Corpus) -> TermId {
    (0..c.num_terms() as TermId)
        .max_by_key(|&t| c.doc_freq(t))
        .unwrap()
}

fn ta_query(c: &Corpus) -> KeywordQuery {
    let mut terms: Vec<TermId> = (0..c.num_terms() as TermId)
        .filter(|&t| c.doc_freq(t) >= 6)
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(c.doc_freq(t)));
    terms.truncate(2);
    assert_eq!(terms.len(), 2, "need two busy terms");
    KeywordQuery { terms }
}

/// A mutated serving state: base epoch + live adds + deletes + one
/// compaction — segments, tombstones, and a bumped compaction counter
/// all present in what gets persisted.
fn mutated_state() -> SegmentedIndex {
    let corpus = base(120);
    let donor = generate(&SynthConfig {
        num_docs: 160,
        ..SynthConfig::tiny()
    });
    let mut seg = SegmentedIndex::build_partitioned(corpus, 2);
    seg.add_docs((120..136u32).map(|d| donor.doc(d).clone()).collect());
    seg.add_docs((136..150u32).map(|d| donor.doc(d).clone()).collect());
    seg.delete_docs(&[0, 7, 121, 140]);
    assert!(seg.compact() > 0);
    seg
}

/// A deliberately small serving state (tiny vocabulary, a dozen docs)
/// whose snapshot is a few KB — the corruption sweeps below are
/// quadratic (every offset × a full directory load), so they run on
/// this, not on [`mutated_state`].
fn small_state() -> SegmentedIndex {
    let mut b = Corpus::builder();
    b.add_text("storm-1", "storm surge floods coastal city downtown");
    b.add_text("storm-2", "storm surge floods coastal city harbor");
    b.add_text("sports", "cup final penalty shootout drama");
    b.add_text("markets", "stocks rally earnings beat forecast");
    for i in 0..8 {
        b.add_text(&format!("f{i}"), "miscellaneous archive background noise");
    }
    let mut seg = SegmentedIndex::build_partitioned(b.build(), 2);
    seg.add_text("storm-3", "storm surge evacuation ordered");
    seg.add_text("markets-2", "stocks slide forecast cut");
    seg.delete_docs(&[1, 12]);
    assert!(seg.compact() > 0);
    seg
}

/// A process-unique scratch path; any directory left over from a
/// previous crashed run is removed first.
fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("divtopk-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Names of every file in a snapshot directory.
fn snapshot_files(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

#[test]
fn segmented_round_trip_serves_byte_identically() {
    let seg = mutated_state();
    let dir = temp_path("roundtrip.snapshot");
    persist::save_segmented(&dir, &seg, 7).unwrap();
    let (loaded, generation) = persist::load_segmented(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(generation, 7);
    assert_eq!(loaded.num_segments(), seg.num_segments());
    assert_eq!(loaded.tombstones(), seg.tombstones());
    assert_eq!(loaded.compactions(), seg.compactions());
    assert_eq!(loaded.next_segment_id(), seg.next_segment_id());
    // The PR 4 oracle holds on the *loaded* state directly.
    loaded.verify_rebuild_equivalence().unwrap();
    // Scan reads are byte-equal — hits, total score, and every metric,
    // early-stop point included.
    let term = busy_term(seg.corpus());
    for k in [1usize, 5, 10] {
        let options = SearchOptions::new(k).with_tau(0.4);
        assert_eq!(
            seg.search_scan(term, &options).unwrap(),
            loaded.search_scan(term, &options).unwrap(),
            "scan k={k}"
        );
    }
    // TA reads too: the loaded segments are bit-identical and in the same
    // order, so the whole pull sequence (and with it the output struct)
    // reproduces exactly.
    let query = ta_query(seg.corpus());
    let options = SearchOptions::new(5).with_tau(0.4);
    assert_eq!(
        seg.search_ta(&query, &options).unwrap(),
        loaded.search_ta(&query, &options).unwrap()
    );
}

#[test]
fn random_mutation_scripts_round_trip() {
    let mut rng = Pcg::new(0x5EED_CAFE);
    // One directory reused across all trials: every trial's state is a
    // *different lineage*, so each save must detect the stale files by
    // fingerprint and rewrite (never silently reuse) them.
    let dir = temp_path("scripts.snapshot");
    for trial in 0..5 {
        let donor = generate(&SynthConfig {
            num_docs: 200,
            ..SynthConfig::tiny()
        });
        let mut builder = CorpusBuilder::with_synthetic_vocab(donor.num_terms());
        for d in 0..80u32 {
            builder.add_document(donor.doc(d).clone());
        }
        let mut seg = SegmentedIndex::build(builder.build());
        let mut next = 80u32;
        for _ in 0..12 {
            match rng.below(3) {
                0 if (next as usize) < 200 => {
                    let take = (1 + rng.below(8)).min(200 - next);
                    let batch: Vec<Document> =
                        (next..next + take).map(|d| donor.doc(d).clone()).collect();
                    seg.add_docs(batch);
                    next += take;
                }
                1 => {
                    let victims: Vec<DocId> =
                        (0..3).map(|_| rng.below(seg.num_docs() as u32)).collect();
                    seg.delete_docs(&victims);
                }
                _ => {
                    seg.compact();
                }
            }
        }
        persist::save_segmented(&dir, &seg, trial).unwrap();
        let (loaded, generation) = persist::load_segmented(&dir).unwrap();
        assert_eq!(generation, trial);
        loaded.verify_rebuild_equivalence().unwrap();
        let term = busy_term(seg.corpus());
        let options = SearchOptions::new(5).with_tau(0.5);
        assert_eq!(
            seg.search_scan(term, &options).unwrap(),
            loaded.search_scan(term, &options).unwrap(),
            "trial {trial}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_checkpoints_reuse_files_and_load_identically() {
    let corpus = base(120);
    let donor = generate(&SynthConfig {
        num_docs: 160,
        ..SynthConfig::tiny()
    });
    let mut seg = SegmentedIndex::build_partitioned(corpus, 2);
    let dir = temp_path("incremental.snapshot");
    let first = persist::save_segmented(&dir, &seg, 1).unwrap();
    assert_eq!(first.files_reused, 0);

    // Checkpoint after every mutation; each one must reuse the prior
    // files and write strictly less than the full snapshot.
    let mut generation = 1;
    for round in 0..3u32 {
        let lo = 120 + round * 10;
        seg.add_docs((lo..lo + 10).map(|d| donor.doc(d).clone()).collect());
        seg.delete_docs(&[round, 50 + round]);
        generation += 1;
        let report = persist::save_segmented(&dir, &seg, generation).unwrap();
        assert!(report.files_reused > 0, "round {round}: {report:?}");
        assert!(
            report.bytes_written < first.bytes_written,
            "round {round}: checkpoint rewrote the world ({report:?})"
        );
        let (loaded, g) = persist::load_segmented(&dir).unwrap();
        assert_eq!(g, generation);
        assert!(loaded.corpus().docs().eq(seg.corpus().docs()));
        loaded.verify_rebuild_equivalence().unwrap();
    }
    // A checkpoint with no changes at all writes exactly one file: the
    // manifest (the generation lives there).
    let idle = persist::save_segmented(&dir, &seg, generation + 1).unwrap();
    assert_eq!(idle.files_written, 1, "{idle:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn engine_snapshot_round_trip_preserves_generation_and_answers() {
    let corpus = base(150);
    let donor = generate(&SynthConfig {
        num_docs: 180,
        ..SynthConfig::tiny()
    });
    let engine = Engine::new(corpus, EngineConfig::new(2).with_threads(2));
    engine.add_docs((150..165u32).map(|d| donor.doc(d).clone()).collect());
    engine.delete_docs(&[3, 151]);
    engine.compact();
    let generation = engine.generation();
    assert!(generation >= 2);

    let path = temp_path("engine.snapshot");
    let report = engine.save_snapshot(&path).unwrap();
    assert!(report.bytes_written > 0);
    assert_eq!(report.bytes_written, report.total_bytes);
    let loaded = Engine::load_snapshot(&path, &EngineConfig::new(1).with_threads(2)).unwrap();
    std::fs::remove_dir_all(&path).unwrap();

    // The generation resumes; process-local counters start over.
    assert_eq!(loaded.generation(), generation);
    let stats = loaded.stats();
    assert_eq!((stats.queries, stats.cache_entries), (0, 0));
    assert_eq!(stats.segments, engine.stats().segments);
    assert_eq!(stats.tombstones, engine.stats().tombstones);
    // Layout provenance (the `config.shards` precedence contract): the
    // loaded engine serves the snapshot's layout, not the requested
    // 1-shard partition — and says so.
    assert_eq!(stats.configured_shards, 1);
    assert!(stats.layout_from_snapshot);
    assert!(!engine.stats().layout_from_snapshot);
    loaded.verify_rebuild_equivalence().unwrap();

    // Every query class answers byte-identically to the saved engine.
    let term = busy_term(&engine.corpus());
    let query = ta_query(&engine.corpus());
    for k in [1usize, 4, 8] {
        let options = SearchOptions::new(k).with_tau(0.5);
        assert_eq!(
            engine.search(&Query::Scan(term), &options).unwrap(),
            loaded.search(&Query::Scan(term), &options).unwrap(),
            "scan k={k}"
        );
        assert_eq!(
            engine
                .search(&Query::Keywords(query.clone()), &options)
                .unwrap(),
            loaded
                .search(&Query::Keywords(query.clone()), &options)
                .unwrap(),
            "ta k={k}"
        );
    }
}

#[test]
fn loaded_engine_keeps_mutating_from_where_it_stood() {
    let engine = Engine::new(base(100), EngineConfig::new(2).with_threads(1));
    engine.delete_docs(&[5]);
    let path = temp_path("resume.snapshot");
    engine.save_snapshot(&path).unwrap();
    let loaded = Engine::load_snapshot(&path, &EngineConfig::default()).unwrap();
    std::fs::remove_dir_all(&path).unwrap();
    let donor = generate(&SynthConfig {
        num_docs: 120,
        ..SynthConfig::tiny()
    });
    let range = loaded.add_docs((100..110u32).map(|d| donor.doc(d).clone()).collect());
    assert_eq!(range, 100..110);
    assert_eq!(loaded.generation(), engine.generation() + 1);
    assert_eq!(loaded.delete_docs(&[105]), 1);
    loaded.compact();
    loaded.verify_rebuild_equivalence().unwrap();
}

#[test]
fn corpus_and_index_file_round_trips() {
    let corpus = base(60);
    let index = InvertedIndex::build(&corpus);
    let cpath = temp_path("corpus.snapshot");
    let ipath = temp_path("index.snapshot");
    persist::save_corpus(&cpath, &corpus).unwrap();
    persist::save_index(&ipath, &index).unwrap();
    let lcorpus = persist::load_corpus(&cpath).unwrap();
    let lindex = persist::load_index(&ipath).unwrap();
    std::fs::remove_file(&cpath).unwrap();
    std::fs::remove_file(&ipath).unwrap();
    assert!(lcorpus.docs().eq(corpus.docs()));
    for t in 0..corpus.num_terms() as TermId {
        assert_eq!(lcorpus.idf(t).to_bits(), corpus.idf(t).to_bits());
        let (a, b) = (index.postings(t), lindex.postings(t));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                (x.doc, x.tf, x.partial.to_bits()),
                (y.doc, y.tf, y.partial.to_bits())
            );
        }
    }
    // A fresh searcher over the loaded pair answers byte-identically.
    let term = busy_term(&corpus);
    let options = SearchOptions::new(4).with_tau(0.5);
    let want = DiversifiedSearcher::new(&corpus, &index)
        .search_scan(term, &options)
        .unwrap();
    let got = DiversifiedSearcher::new(&lcorpus, &lindex)
        .search_scan(term, &options)
        .unwrap();
    assert_eq!(want, got);
}

#[test]
fn truncation_at_every_offset_of_every_file_is_a_typed_error() {
    let seg = small_state();
    let dir = temp_path("truncate.snapshot");
    persist::save_segmented(&dir, &seg, 1).unwrap();
    for name in snapshot_files(&dir) {
        let path = dir.join(&name);
        let original = std::fs::read(&path).unwrap();
        // Literally every prefix of every file — manifest, epoch,
        // segments, chunks — must fail typed, never panic.
        for cut in 0..original.len() {
            std::fs::write(&path, &original[..cut]).unwrap();
            assert!(
                persist::load_segmented(&dir).is_err(),
                "{name} truncated to {cut} bytes must not load"
            );
        }
        std::fs::write(&path, &original).unwrap();
    }
    // The loop restored every file: the pristine directory still loads.
    persist::load_segmented(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flips_in_every_byte_of_every_file_are_typed_errors() {
    let seg = small_state();
    let dir = temp_path("bitflip.snapshot");
    persist::save_segmented(&dir, &seg, 1).unwrap();
    for name in snapshot_files(&dir) {
        let path = dir.join(&name);
        let mut bytes = std::fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mask = 1u8 << (i % 8);
            bytes[i] ^= mask;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                persist::load_segmented(&dir).is_err(),
                "{name}: flip at byte {i} must not load"
            );
            bytes[i] ^= mask;
        }
        std::fs::write(&path, &bytes).unwrap();
    }
    persist::load_segmented(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cross_file_inconsistencies_are_typed_errors() {
    let seg = small_state();
    let dir = temp_path("crossfile.snapshot");
    persist::save_segmented(&dir, &seg, 1).unwrap();
    let files = snapshot_files(&dir);

    // Deleting any referenced file leaves a manifest naming a missing
    // file — a typed I/O error on load, never a panic.
    for name in files.iter().filter(|n| *n != "MANIFEST") {
        let path = dir.join(name);
        let original = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(persist::load_segmented(&dir), Err(SnapshotError::Io(_))),
            "missing {name} must be a typed I/O error"
        );
        std::fs::write(&path, &original).unwrap();
    }

    // Swapping any two referenced files (stale/renamed file scenario)
    // must be caught by the manifest's per-file length or CRC, before
    // any section of the wrong file is interpreted.
    let swappable: Vec<&String> = files.iter().filter(|n| *n != "MANIFEST").collect();
    for i in 0..swappable.len() {
        for j in (i + 1)..swappable.len() {
            let (a, b) = (dir.join(swappable[i]), dir.join(swappable[j]));
            let (bytes_a, bytes_b) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
            std::fs::write(&a, &bytes_b).unwrap();
            std::fs::write(&b, &bytes_a).unwrap();
            let err =
                persist::load_segmented(&dir).expect_err("swapped snapshot files must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::TrailingBytes { .. }
                        | SnapshotError::ChecksumMismatch { .. }
                ),
                "swap {} <-> {}: unexpected error {err:?}",
                swappable[i],
                swappable[j]
            );
            std::fs::write(&a, &bytes_a).unwrap();
            std::fs::write(&b, &bytes_b).unwrap();
        }
    }
    persist::load_segmented(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_format_version_fixture_is_rejected() {
    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/wrong_version.snapshot");
    let bytes = std::fs::read(&fixture).expect("checked-in fixture");
    // As a manifest of a snapshot directory:
    let dir = temp_path("wrongversion.snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("MANIFEST"), &bytes).unwrap();
    match persist::load_segmented(&dir) {
        Err(SnapshotError::UnsupportedVersion { found: 9 }) => {}
        other => panic!("expected UnsupportedVersion {{ found: 9 }}, got {other:?}"),
    }
    // The file-level and engine entry points agree.
    assert!(matches!(
        persist::load_corpus(&fixture),
        Err(SnapshotError::UnsupportedVersion { found: 9 })
    ));
    assert!(matches!(
        Engine::load_snapshot(&dir, &EngineConfig::default()),
        Err(SnapshotError::UnsupportedVersion { found: 9 })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_snapshot_is_an_io_error() {
    let path = temp_path("does-not-exist.snapshot");
    assert!(matches!(
        Engine::load_snapshot(&path, &EngineConfig::default()),
        Err(SnapshotError::Io(_))
    ));
    assert!(matches!(
        persist::load_corpus(&path),
        Err(SnapshotError::Io(_))
    ));
}

#[test]
fn snapshot_error_display_is_informative() {
    let seg = small_state();
    let dir = temp_path("display.snapshot");
    persist::save_segmented(&dir, &seg, 1).unwrap();
    let manifest = dir.join("MANIFEST");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..10]).unwrap();
    let msg = persist::load_segmented(&dir).unwrap_err().to_string();
    assert!(msg.contains("truncated"), "got: {msg}");
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    std::fs::write(&manifest, &flipped).unwrap();
    let msg = persist::load_segmented(&dir).unwrap_err().to_string();
    assert!(msg.contains("checksum mismatch"), "got: {msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}
