//! Rebuild-equivalence property suite for the segmented live-update index
//! (`divtopk_text::segments`, DESIGN.md §9).
//!
//! The load-bearing claim of the live-update path is **rebuild
//! equivalence**: after *any* interleaving of `add_docs` / `delete_docs` /
//! `compact`, the segmented read path serves exactly what a from-scratch
//! `InvertedIndex::build` of the surviving documents (under the same
//! frozen statistics epoch) would serve.
//!
//! * For **scan** (single-keyword, incremental) queries the guarantee is
//!   structural and total: the tombstone-filtered merge of per-segment
//!   scans emits the exact rebuilt posting order with the exact rebuilt
//!   bound sequence, so the whole framework run — hits, total score, *and
//!   every metric counter, including the early-stop point* — is
//!   bit-for-bit identical.
//! * For **TA** (multi-keyword, bounding) queries the pull order and the
//!   merged bound trajectory legitimately differ from the rebuilt single
//!   TA (same as the shard axis, DESIGN.md §8), so the guarantee is
//!   exactness: equal total score, valid pairwise-dissimilar live hits —
//!   and identical hit *lists* whenever the optimum is unique, which the
//!   distinct-score check makes the common case.

use divtopk::core::rng::Pcg;
use divtopk::core::{MergedSource, ResultSource, UnseenBound};
use divtopk::text::prelude::*;
use divtopk::text::tfidf;

/// Generates a donor corpus and splits it: the first `base` docs become
/// the frozen-statistics base epoch, the rest form the add-pool (same
/// synthetic vocabulary, so every pooled doc is valid under the epoch).
fn base_and_pool(seed: u64, base: usize, extra: usize) -> (Corpus, Vec<Document>) {
    let donor = generate(&SynthConfig {
        num_docs: base + extra,
        near_dup_prob: 0.35, // plenty of near-duplicate structure
        ..SynthConfig::tiny().with_seed(seed)
    });
    let mut builder = CorpusBuilder::with_synthetic_vocab(donor.num_terms());
    for d in 0..base as DocId {
        builder.add_document(donor.doc(d).clone());
    }
    let pool = (base..base + extra)
        .map(|d| donor.doc(d as DocId).clone())
        .collect();
    (builder.build(), pool)
}

/// Busy-but-tractable query terms under the frozen epoch.
fn interesting_terms(corpus: &Corpus, count: usize) -> Vec<TermId> {
    let mut terms: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| (6..=60).contains(&corpus.doc_freq(t)))
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(corpus.doc_freq(t)));
    terms.truncate(count);
    terms
}

/// True when every selected hit's score is unique among all matched live
/// docs (⇒ the optimum set is unique; see `tests/engine.rs`).
fn hits_have_unique_scores(
    corpus: &Corpus,
    index: &InvertedIndex,
    terms: &[TermId],
    hits: &[Hit],
) -> bool {
    use std::collections::BTreeSet;
    let mut docs: BTreeSet<DocId> = BTreeSet::new();
    for &t in terms {
        docs.extend(index.postings(t).iter().map(|p| p.doc));
    }
    let matched: Vec<f64> = docs
        .iter()
        .map(|&d| tfidf::score(corpus, terms, d).get())
        .collect();
    hits.iter().all(|h| {
        let s = h.score.get();
        let near = matched
            .iter()
            .filter(|&&m| (m - s).abs() <= 1e-9 * s.abs().max(1.0))
            .count();
        near == 1 // the hit itself, nothing else
    })
}

/// The satellite-1 property: random interleavings of adds, deletes, and
/// compactions, checked after every mutation against the from-scratch
/// rebuild, for scan and TA sources, k ∈ {1, 5, 10}.
#[test]
fn random_interleavings_serve_exactly_the_rebuilt_index() {
    let mut ta_identical = 0usize;
    for seed in [3u64, 5, 8] {
        let (base, mut pool) = base_and_pool(seed, 130, 70);
        let terms = interesting_terms(&base, 3);
        assert!(terms.len() >= 2, "seed {seed}: not enough usable terms");
        let ta_query = KeywordQuery {
            terms: terms[..2].to_vec(),
        };
        let mut seg = SegmentedIndex::build(base);
        let mut rng = Pcg::new(seed ^ 0xD1CE);
        for step in 0..14 {
            // One random mutation…
            match rng.below(4) {
                0 | 1 if !pool.is_empty() => {
                    let take = (1 + rng.below(10) as usize).min(pool.len());
                    let batch: Vec<Document> = pool.drain(..take).collect();
                    seg.add_docs(batch);
                }
                2 => {
                    let n = seg.num_docs() as u32;
                    let victims: Vec<DocId> = (0..1 + rng.below(6)).map(|_| rng.below(n)).collect();
                    seg.delete_docs(&victims);
                }
                _ => {
                    seg.compact();
                }
            }
            // …then the data-level invariant…
            seg.verify_rebuild_equivalence()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
            // …and the behavioural one, against the rebuild oracle.
            let rebuilt = seg.rebuilt_index();
            let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
            for k in [1usize, 5, 10] {
                let options = SearchOptions::new(k).with_tau(0.5);
                for &term in &terms {
                    let want = searcher.search_scan(term, &options).unwrap();
                    let got = seg.search_scan(term, &options).unwrap();
                    // Total equality: hits, scores, AND all framework
                    // metrics (results pulled, inner searches, early stop).
                    assert_eq!(want, got, "seed {seed} step {step} term {term} k {k}");
                }
                let want = searcher.search_ta(&ta_query, &options).unwrap();
                let got = seg.search_ta(&ta_query, &options).unwrap();
                assert!(
                    got.total_score.approx_eq(want.total_score, 1e-9),
                    "seed {seed} step {step} k {k}: TA optimum {} vs rebuilt {}",
                    got.total_score,
                    want.total_score
                );
                for (i, h) in got.hits.iter().enumerate() {
                    assert!(seg.is_live(h.doc), "tombstoned doc {} served", h.doc);
                    for other in &got.hits[i + 1..] {
                        let s = weighted_jaccard(
                            seg.corpus(),
                            seg.corpus().doc(h.doc),
                            seg.corpus().doc(other.doc),
                        );
                        assert!(s <= 0.5, "seed {seed} step {step}: similar hits");
                    }
                }
                if hits_have_unique_scores(seg.corpus(), &rebuilt, &ta_query.terms, &want.hits) {
                    assert_eq!(
                        want.hits, got.hits,
                        "seed {seed} step {step} k {k}: unique optimum must match"
                    );
                    ta_identical += 1;
                }
            }
        }
    }
    assert!(
        ta_identical >= 20,
        "too few unique-optimum TA cases exercised ({ta_identical})"
    );
}

/// Builds the satellite-3 fixture: two segments where the *added* segment's
/// head (its highest-partial posting for `heavy`, which also carries the
/// merged TA threshold) is then tombstoned.
fn bound_head_fixture() -> (SegmentedIndex, TermId, TermId, DocId) {
    let mut b = Corpus::builder();
    // Base epoch: moderate "heavy" docs plus filler that keeps idf > 0.
    b.add_text("b0", "heavy cargo manifest");
    b.add_text("b1", "heavy freight schedule");
    b.add_text("b2", "heavy lift crane rental");
    b.add_text("b3", "rare heavy anomaly");
    for i in 0..8 {
        b.add_text(&format!("f{i}"), "unrelated filler text entirely");
    }
    let mut seg = SegmentedIndex::build(b.build());
    let heavy = seg.corpus().term_id("heavy").unwrap();
    let rare = seg.corpus().term_id("rare").unwrap();
    // Added segment: its head doc repeats "heavy" so it tops *every* list
    // it appears in — the bound-carrying head of segment 2.
    let head = seg.add_text("head", "heavy heavy heavy heavy rare");
    seg.add_text("tail1", "heavy ballast");
    seg.add_text("tail2", "rare heavy sample");
    // Sanity: the added doc really is the global top for `heavy`.
    let rebuilt = seg.rebuilt_index();
    assert_eq!(rebuilt.postings(heavy)[0].doc, head);
    seg.delete_docs(&[head]);
    (seg, heavy, rare, head)
}

/// Satellite 3 (scan half): deleting the bound-carrying head of one
/// segment leaves the merged scan's reported bounds monotone
/// non-increasing and the framework run byte-identical to the rebuilt
/// oracle (same early-termination point).
#[test]
fn tombstoned_bound_head_keeps_scan_bounds_monotone_and_oracle_exact() {
    let (seg, heavy, _, head) = bound_head_fixture();
    // Manual pull: bounds must never rise, and the tombstone never emits.
    let mut merged =
        MergedSource::incremental_filtered(seg.scan_sources(heavy), |d: &DocId| seg.is_live(*d));
    let mut prev = f64::INFINITY;
    let mut emitted = 0;
    while let Some(r) = merged.next_result() {
        assert_ne!(r.item, head, "tombstoned head emitted");
        let UnseenBound::At(b) = merged.unseen_bound() else {
            panic!("bound must be known after an emission");
        };
        assert!(
            b.get() <= prev,
            "bound rose {prev} -> {} after doc {}",
            b.get(),
            r.item
        );
        assert!(r.score.get() <= prev, "emitted above the previous bound");
        prev = b.get();
        emitted += 1;
    }
    assert!(emitted >= 5, "fixture lost its live postings");
    // Early termination matches the oracle exactly (metrics included).
    let rebuilt = seg.rebuilt_index();
    let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
    for (k, tau) in [(2usize, 0.3f64), (3, 0.9)] {
        let options = SearchOptions::new(k).with_tau(tau);
        let want = searcher.search_scan(heavy, &options).unwrap();
        let got = seg.search_scan(heavy, &options).unwrap();
        assert_eq!(want, got, "k {k} τ {tau}");
    }
}

/// Satellite 3 (TA half): with the threshold-carrying head tombstoned,
/// the merged bounding source stays monotone and covers every live unseen
/// doc, and the framework still finds the exact live optimum.
#[test]
fn tombstoned_bound_head_keeps_ta_bounds_monotone_and_exact() {
    let (seg, heavy, rare, head) = bound_head_fixture();
    let query = KeywordQuery {
        terms: vec![heavy, rare],
    };
    // Live reference scores from the rebuild oracle.
    let rebuilt = seg.rebuilt_index();
    use std::collections::BTreeMap;
    let mut live_scores: BTreeMap<DocId, f64> = BTreeMap::new();
    for &t in &query.terms {
        for p in rebuilt.postings(t) {
            live_scores
                .entry(p.doc)
                .or_insert_with(|| tfidf::score(seg.corpus(), &query.terms, p.doc).get());
        }
    }
    let mut merged =
        MergedSource::bounding_filtered(seg.ta_sources(&query), |d: &DocId| seg.is_live(*d));
    let mut prev = f64::INFINITY;
    let mut returned: Vec<DocId> = Vec::new();
    loop {
        let UnseenBound::At(b) = merged.unseen_bound() else {
            panic!("bounding merge must always report a bound");
        };
        assert!(b.get() <= prev, "bound rose {prev} -> {}", b.get());
        prev = b.get();
        // Soundness over the live set despite the deleted head.
        for (&doc, &score) in &live_scores {
            if !returned.contains(&doc) {
                assert!(
                    score <= b.get() + 1e-9,
                    "live unseen doc {doc} (score {score}) above bound {b}"
                );
            }
        }
        match merged.next_result() {
            Some(r) => {
                assert_ne!(r.item, head, "tombstoned head emitted");
                returned.push(r.item);
            }
            None => break,
        }
    }
    assert_eq!(returned.len(), live_scores.len(), "live docs lost");
    // Exactness end to end, hits identical (fixture scores are distinct).
    let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
    let options = SearchOptions::new(3).with_tau(0.5);
    let want = searcher.search_ta(&query, &options).unwrap();
    let got = seg.search_ta(&query, &options).unwrap();
    assert!(got.total_score.approx_eq(want.total_score, 1e-9));
    assert_eq!(want.hits, got.hits);
}

/// Compaction in the middle of a mutation stream preserves equivalence
/// even when it purges the majority of a segment.
#[test]
fn compaction_after_heavy_deletion_stays_equivalent() {
    let (base, pool) = base_and_pool(21, 100, 40);
    let terms = interesting_terms(&base, 2);
    let mut seg = SegmentedIndex::build(base);
    // Several small segments…
    for chunk in pool.chunks(8) {
        seg.add_docs(chunk.to_vec());
    }
    // …then delete most of the added docs and compact repeatedly.
    let victims: Vec<DocId> = (100..132u32).collect();
    seg.delete_docs(&victims);
    while seg.compact() > 0 {}
    seg.verify_rebuild_equivalence().unwrap();
    let rebuilt = seg.rebuilt_index();
    let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
    for &term in &terms {
        for k in [1usize, 5, 10] {
            let options = SearchOptions::new(k).with_tau(0.4);
            assert_eq!(
                searcher.search_scan(term, &options).unwrap(),
                seg.search_scan(term, &options).unwrap(),
                "term {term} k {k}"
            );
        }
    }
}

/// Deleting every matching document serves the empty answer, exactly like
/// a rebuild with those documents gone.
#[test]
fn deleting_every_match_yields_the_rebuilt_empty_answer() {
    let (base, _) = base_and_pool(31, 80, 0);
    let term = interesting_terms(&base, 1)[0];
    let mut seg = SegmentedIndex::build(base);
    let victims: Vec<DocId> = seg
        .rebuilt_index()
        .postings(term)
        .iter()
        .map(|p| p.doc)
        .collect();
    assert!(!victims.is_empty());
    seg.delete_docs(&victims);
    let rebuilt = seg.rebuilt_index();
    assert!(rebuilt.postings(term).is_empty());
    let searcher = DiversifiedSearcher::new(seg.corpus(), &rebuilt);
    let options = SearchOptions::new(5).with_tau(0.5);
    let want = searcher.search_scan(term, &options).unwrap();
    let got = seg.search_scan(term, &options).unwrap();
    assert_eq!(want, got);
    assert!(got.hits.is_empty());
}
