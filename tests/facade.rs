//! Guards the facade crate's wiring: `divtopk::core` / `divtopk::text`
//! re-exports and the flattened prelude must keep resolving, so a manifest
//! or feature regression breaks this test instead of every downstream user.

use divtopk::prelude::*;

/// Every path below is written fully qualified on purpose: the test is
/// about *name resolution through the facade*, not about behavior.
#[test]
fn core_reexport_paths_resolve() {
    let g = divtopk::core::graph::DiversityGraph::from_sorted_scores(
        vec![
            divtopk::core::score::Score::new(3.0),
            divtopk::core::score::Score::new(2.0),
            divtopk::core::score::Score::new(1.0),
        ],
        &[(0, 1)],
    );
    let r = divtopk::core::dp::div_dp(&g, 2);
    assert_eq!(r.best().score(), divtopk::core::score::Score::new(4.0));
    // Submodules reachable through the alias, not just the prelude names.
    let _ = divtopk::core::testgen::path_graph(4, 7);
    let _ = divtopk::core::rng::Pcg::new(1);
}

#[test]
fn text_reexport_paths_resolve() {
    let mut builder = divtopk::text::corpus::Corpus::builder();
    builder.add_text("d1", "alpha beta gamma");
    builder.add_text("d2", "alpha beta delta");
    let corpus = builder.build();
    let index = divtopk::text::index::InvertedIndex::build(&corpus);
    assert_eq!(corpus.num_docs(), 2);
    assert!(index.num_terms() > 0);
    let toks = divtopk::text::tokenize::tokenize("Hello, World!");
    assert_eq!(toks, vec!["hello".to_string(), "world".to_string()]);
}

#[test]
fn engine_reexport_paths_resolve() {
    let mut builder = divtopk::text::corpus::Corpus::builder();
    builder.add_text("d1", "alpha beta gamma");
    builder.add_text("d2", "alpha beta delta");
    builder.add_text("d3", "unrelated filler words");
    let corpus = builder.build();
    let engine =
        divtopk::engine::engine::Engine::new(corpus, divtopk::engine::engine::EngineConfig::new(2));
    assert_eq!(engine.stats().segments, 2);
    // The static sharding primitive and the live-update segment index
    // both stay reachable through the facade.
    let _ = divtopk::engine::shard::ShardedCorpus::build(
        {
            let mut b = divtopk::text::corpus::Corpus::builder();
            b.add_text("s0", "alpha beta");
            b.build()
        },
        2,
    );
    let _: divtopk::prelude::SegmentedIndex = divtopk::text::segments::SegmentedIndex::build({
        let mut b = divtopk::text::corpus::Corpus::builder();
        b.add_text("s0", "alpha beta");
        b.build()
    });
    // Prelude names flattened through the facade.
    let _: divtopk::prelude::EngineConfig = divtopk::prelude::EngineConfig::default();
    let _: divtopk::prelude::CacheStats = Default::default();
    let stats: divtopk::prelude::EngineStats = engine.stats();
    assert_eq!(stats.queries, 0);
}

/// The facade flattens `divtopk_core::prelude` at its root: the names used
/// by every example must resolve without any explicit submodule path.
#[test]
fn prelude_names_resolve_at_facade_root() {
    let results = vec![
        Scored::new(("a", 0u32), Score::new(2.0)),
        Scored::new(("b", 0u32), Score::new(1.5)),
        Scored::new(("c", 1u32), Score::new(1.0)),
    ];
    let source = IncrementalVecSource::new(results);
    let out = DivTopK::new(
        source,
        |a: &(&str, u32), b: &(&str, u32)| a.1 == b.1,
        DivSearchConfig::new(2),
    )
    .run()
    .unwrap();
    assert_eq!(out.selected.len(), 2);
    assert_eq!(out.total_score, Score::new(3.0));

    // A couple of non-framework prelude names, one per module family.
    let _: NodeSet = NodeSet::empty();
    let _ = SearchLimits::unlimited();
    let _ = ExactAlgorithm::Cut;
}

/// `use divtopk::prelude::*` itself must exist and match the root flatten.
#[test]
fn prelude_module_matches_root() {
    let a: Score = Score::new(1.25);
    let b: divtopk::Score = a;
    assert_eq!(a, b);
}
