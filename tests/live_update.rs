//! Live-update serving tests for the snapshot/epoch layer
//! (`divtopk-engine`, DESIGN.md §9).
//!
//! Two claims are pinned here:
//!
//! 1. **Snapshot isolation.** A writer mutating the engine concurrently
//!    with readers can never produce a *torn* response: every answer is
//!    internally consistent with exactly one generation's state (each
//!    query pins one `Arc<Snapshot>` for its whole lifetime).
//! 2. **Generation-scoped caching.** The result cache can never serve a
//!    pre-mutation result to a post-mutation query — the cache key embeds
//!    the generation pinned per query at probe time, including inside
//!    `search_batch`.

use divtopk::engine::prelude::*;
use divtopk::text::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// A corpus where `hot` appears in docs 0..10 with strictly decreasing
/// scores (decreasing tf), so every deletion visibly changes the top-k and
/// every generation's answer is distinguishable from every other's.
fn staircase_corpus() -> (Corpus, TermId) {
    let mut b = Corpus::builder();
    for i in 0..10usize {
        // 12-i repetitions of "hot" + per-doc filler → strictly ordered.
        let mut text = "hot ".repeat(12 - i);
        text.push_str(&format!("filler{i} padding{i}"));
        b.add_text(&format!("d{i}"), &text);
    }
    for i in 0..10 {
        b.add_text(&format!("cold{i}"), "entirely unrelated noise words");
    }
    let corpus = b.build();
    let hot = corpus.term_id("hot").unwrap();
    (corpus, hot)
}

/// Satellite 2: a writer thread deletes the current best document one
/// generation at a time while reader threads replay a query trace. Every
/// response must equal one of the per-generation references exactly — no
/// response may mix generations — and after the writer finishes, the
/// cache must serve only the final generation's answer.
#[test]
fn concurrent_readers_see_only_whole_snapshots() {
    let (corpus, hot) = staircase_corpus();
    let options = SearchOptions::new(3).with_tau(0.9);
    let mutations = 6u32;

    // Reference answers per generation, from an offline replica applying
    // the same mutation schedule (the engine's read path is the replica's
    // read path, so byte-equality is the expected outcome).
    let mut replica = SegmentedIndex::build_partitioned(corpus.clone(), 2);
    let mut references = vec![replica.search_scan(hot, &options).unwrap()];
    for g in 0..mutations {
        replica.delete_docs(&[g]);
        references.push(replica.search_scan(hot, &options).unwrap());
    }
    for (i, a) in references.iter().enumerate() {
        for b in &references[i + 1..] {
            assert_ne!(a, b, "references must be pairwise distinguishable");
        }
    }

    let engine = Engine::new(corpus, EngineConfig::new(2).with_threads(2));
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine = &engine;
        let references = &references;
        let done = &done;
        let options = &options;
        scope.spawn(move || {
            for g in 0..mutations {
                assert_eq!(engine.delete_docs(&[g]), 1);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            scope.spawn(move || {
                let mut seen_any = false;
                while !done.load(Ordering::Acquire) {
                    let out = engine.search(&Query::Scan(hot), options).unwrap();
                    assert!(
                        references.contains(&out),
                        "torn read: response matches no single generation: {out:?}"
                    );
                    seen_any = true;
                }
                assert!(seen_any);
            });
        }
    });

    // Post-mutation: both a fresh computation and a subsequent cache hit
    // must be the final generation's answer, never a stale entry.
    let last = references.last().unwrap();
    assert_eq!(&engine.search(&Query::Scan(hot), &options).unwrap(), last);
    let hits_before = engine.stats().cache_hits;
    let cached = engine.search(&Query::Scan(hot), &options).unwrap();
    assert_eq!(&cached, last, "cache served a pre-mutation result");
    assert!(
        engine.stats().cache_hits > hits_before,
        "second read must hit"
    );
    assert_eq!(engine.stats().generation, u64::from(mutations));
}

/// Satellite 4: a mutation landing *mid-batch* may split the batch across
/// generations, but every single response must still be internally
/// consistent with one generation — the per-query generation re-check at
/// cache-probe time makes cross-generation cache hits impossible.
#[test]
fn mid_batch_mutation_cannot_serve_cross_generation_hits() {
    let (corpus, hot) = staircase_corpus();
    let options = SearchOptions::new(3).with_tau(0.9);

    let mut replica = SegmentedIndex::build_partitioned(corpus.clone(), 2);
    let before = replica.search_scan(hot, &options).unwrap();
    replica.delete_docs(&[0]);
    let after = replica.search_scan(hot, &options).unwrap();
    assert_ne!(before, after);

    for trial in 0..12 {
        let engine = Engine::new(corpus.clone(), EngineConfig::new(2).with_threads(2));
        // Warm the generation-0 cache so a stale hit is *available* if the
        // probe ever forgot to re-check the generation.
        let warm = engine.search(&Query::Scan(hot), &options).unwrap();
        assert_eq!(warm, before);
        let batch: Vec<(Query, SearchOptions)> = vec![(Query::Scan(hot), options.clone()); 64];
        std::thread::scope(|scope| {
            let engine = &engine;
            let handle = scope.spawn(move || engine.search_batch(&batch));
            // Land the mutation while the batch drains.
            std::thread::sleep(std::time::Duration::from_micros(200 * (trial % 4)));
            engine.delete_docs(&[0]);
            let outs = handle.join().unwrap();
            for out in outs {
                let out = out.unwrap();
                assert!(
                    out == before || out == after,
                    "trial {trial}: response mixes generations: {out:?}"
                );
            }
        });
        // Every query issued from now on is post-mutation and must see
        // the new state even though generation-0 entries are still cached.
        let fresh = engine.search(&Query::Scan(hot), &options).unwrap();
        assert_eq!(fresh, after, "trial {trial}: stale cache entry served");
    }
}

/// Sequential shape of the same satellite-4 claim, with exact counter
/// accounting: one computation per (query, generation), duplicates
/// single-flighted, zero hits across the generation boundary.
#[test]
fn generation_bump_orphans_every_cache_entry() {
    let (corpus, hot) = staircase_corpus();
    let options = SearchOptions::new(2).with_tau(0.9);
    let engine = Engine::new(corpus, EngineConfig::new(1).with_threads(1));
    for _ in 0..3 {
        let _ = engine.search(&Query::Scan(hot), &options).unwrap();
    }
    let s0 = engine.stats();
    assert_eq!((s0.cache_insertions, s0.cache_hits), (1, 2));
    engine.delete_docs(&[0]);
    for _ in 0..3 {
        let _ = engine.search(&Query::Scan(hot), &options).unwrap();
    }
    let s1 = engine.stats();
    assert_eq!(
        s1.cache_insertions, 2,
        "the post-mutation probe must miss and recompute"
    );
    assert_eq!(s1.cache_hits, 4, "hits only ever within one generation");
    assert_eq!(s1.cache_entries, 2, "the orphaned entry ages out via LRU");
}

/// Mutations compose with batch serving: adds, deletes, and compactions
/// interleaved with batches, with the rebuild-equivalence diagnostic run
/// at every generation.
#[test]
fn interleaved_mutations_and_batches_stay_equivalent() {
    let corpus = generate(&SynthConfig {
        num_docs: 150,
        ..SynthConfig::tiny()
    });
    let donor = generate(&SynthConfig {
        num_docs: 220,
        ..SynthConfig::tiny()
    });
    let term = (0..corpus.num_terms() as TermId)
        .max_by_key(|&t| corpus.doc_freq(t))
        .unwrap();
    let engine = Engine::new(corpus, EngineConfig::new(2).with_threads(2));
    let batch: Vec<(Query, SearchOptions)> = (2..6)
        .map(|k| (Query::Scan(term), SearchOptions::new(k).with_tau(0.5)))
        .collect();
    let mut next = 150u32;
    for round in 0u32..4 {
        let adds: Vec<Document> = (next..next + 12).map(|d| donor.doc(d).clone()).collect();
        let range = engine.add_docs(adds);
        assert_eq!(range.start, next);
        next += 12;
        engine.delete_docs(&[range.start, range.start + 3, round]);
        if round % 2 == 1 {
            engine.compact();
        }
        engine.verify_rebuild_equivalence().unwrap();
        // Batch answers equal direct answers on the same (now quiescent)
        // snapshot — cache entries included, which re-checks that every
        // cached value is generation-correct.
        let outs = engine.search_batch(&batch);
        for ((query, opts), out) in batch.iter().zip(outs) {
            let out = out.unwrap();
            let direct = engine.search(query, opts).unwrap();
            assert_eq!(direct, out, "round {round}");
        }
    }
    let stats = engine.stats();
    assert!(stats.generation >= 8, "every effective mutation bumps");
    assert!(stats.compactions >= 1);
}
