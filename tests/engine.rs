//! Property tests for the sharded serving engine (`divtopk-engine`).
//!
//! The load-bearing claim of the engine is **shard transparency**: for any
//! corpus, query, `k`, `τ`, and shard count, the engine's answer is the
//! single-shard `DiversifiedSearcher`'s answer.
//!
//! * For **scan** (single-keyword, incremental) queries the guarantee is
//!   structural and total: the merged per-shard scans emit the exact
//!   unsharded posting order with the exact unsharded bound sequence, so
//!   the whole framework run — hits, total score, *and every metric
//!   counter, including the early-stop point* — is bit-for-bit identical.
//! * For **TA** (multi-keyword, bounding) queries the pull order and the
//!   merged bound trajectory legitimately differ from the unsharded TA
//!   (the max of per-shard thresholds is tighter than the global
//!   threshold), so the guarantee is exactness: equal total score, valid
//!   pairwise-dissimilar hits — and identical hit *lists* whenever the
//!   optimum is unique, which the distinct-score precondition below makes
//!   overwhelmingly likely and the fixed seeds make reproducible.

use divtopk::core::rng::Pcg;
use divtopk::engine::prelude::*;
use divtopk::text::prelude::*;
use divtopk::{ExactAlgorithm, Score};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn corpus_for(seed: u64, num_docs: usize) -> Corpus {
    generate(&SynthConfig {
        num_docs,
        near_dup_prob: 0.35, // plenty of near-duplicate structure
        ..SynthConfig::tiny().with_seed(seed)
    })
}

/// Terms with a mid-sized posting list (interesting but tractable).
fn interesting_terms(corpus: &Corpus, index: &InvertedIndex, count: usize) -> Vec<TermId> {
    let mut terms: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| (6..=60).contains(&index.postings(t).len()))
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(index.postings(t).len()));
    terms.truncate(count);
    terms
}

/// All full scores of docs matching `terms`, for the uniqueness check.
fn matched_scores(corpus: &Corpus, index: &InvertedIndex, terms: &[TermId]) -> Vec<f64> {
    use std::collections::BTreeSet;
    let mut docs: BTreeSet<DocId> = BTreeSet::new();
    for &t in terms {
        docs.extend(index.postings(t).iter().map(|p| p.doc));
    }
    docs.iter()
        .map(|&d| divtopk::text::tfidf::score(corpus, terms, d).get())
        .collect()
}

/// True when every selected hit's score is unique among *all* matched
/// docs (⇒ no equal-score doc could swap into the optimum unnoticed, so
/// the optimum set is unique; sum collisions across distinct float score
/// sets are not realistically constructible by the generator).
fn hits_have_unique_scores(hits: &[Hit], matched: &[f64]) -> bool {
    hits.iter().all(|h| {
        let s = h.score.get();
        let near = matched
            .iter()
            .filter(|&&m| (m - s).abs() <= 1e-9 * s.abs().max(1.0))
            .count();
        near == 1 // the hit itself, nothing else
    })
}

#[test]
fn sharded_scan_is_bit_identical_to_unsharded_searcher() {
    for corpus_seed in [11u64, 12, 13] {
        let corpus = corpus_for(corpus_seed, 220);
        let index = InvertedIndex::build(&corpus);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let terms = interesting_terms(&corpus, &index, 3);
        assert!(
            !terms.is_empty(),
            "corpus {corpus_seed} has no usable terms"
        );
        for &shards in &SHARD_COUNTS {
            let engine = Engine::new(corpus.clone(), EngineConfig::new(shards).with_threads(1));
            for &term in &terms {
                for (k, tau) in [(3usize, 0.4f64), (5, 0.6), (8, 0.3)] {
                    let options = SearchOptions::new(k).with_tau(tau);
                    let want = searcher.search_scan(term, &options).unwrap();
                    let got = engine.search(&Query::Scan(term), &options).unwrap();
                    // Total equality: hits, scores, AND all framework
                    // metrics (results pulled, inner searches, early stop).
                    assert_eq!(
                        want, got,
                        "corpus {corpus_seed} term {term} k {k} τ {tau} shards {shards}"
                    );
                }
            }
        }
    }
}

/// Crafted worst case for determinism: exact duplicate documents (equal
/// scores everywhere) split across shards. The doc-id tie-breaks in the
/// index build and the merge heap must keep the sharded scan bit-identical.
#[test]
fn sharded_scan_handles_exact_score_ties() {
    let mut b = Corpus::builder();
    for i in 0..12 {
        // Six twin pairs — twins land in different shards for S ∈ {2,4,8}.
        b.add_text(&format!("d{i}"), &format!("wheat market report v{}", i / 2));
    }
    for i in 0..8 {
        b.add_text(&format!("f{i}"), "entirely unrelated filler words");
    }
    let corpus = b.build();
    let index = InvertedIndex::build(&corpus);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let wheat = corpus.term_id("wheat").unwrap();
    for &shards in &SHARD_COUNTS {
        let engine = Engine::new(corpus.clone(), EngineConfig::new(shards).with_threads(1));
        for tau in [0.3, 0.8] {
            let options = SearchOptions::new(4).with_tau(tau);
            let want = searcher.search_scan(wheat, &options).unwrap();
            let got = engine.search(&Query::Scan(wheat), &options).unwrap();
            assert_eq!(want, got, "shards {shards} τ {tau}");
        }
    }
}

#[test]
fn sharded_ta_is_exact_and_deterministic() {
    let mut checked_identical = 0usize;
    for corpus_seed in [21u64, 22, 23] {
        let corpus = corpus_for(corpus_seed, 200);
        let index = InvertedIndex::build(&corpus);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let mut rng = Pcg::new(corpus_seed ^ 0xA5);
        for band in [1u8, 2] {
            let Some(query) = query_for_band(&corpus, band, 2, rng.next_u64()) else {
                continue;
            };
            let matched = matched_scores(&corpus, &index, &query.terms);
            for (k, tau) in [(4usize, 0.4f64), (6, 0.6)] {
                let options = SearchOptions::new(k)
                    .with_tau(tau)
                    .with_mode(DiversifyMode::Exact(ExactAlgorithm::Cut));
                let want = searcher.search_ta(&query, &options).unwrap();
                let unique = hits_have_unique_scores(&want.hits, &matched);
                for &shards in &SHARD_COUNTS {
                    let engine =
                        Engine::new(corpus.clone(), EngineConfig::new(shards).with_threads(1));
                    let got = engine
                        .search(&Query::Keywords(query.clone()), &options)
                        .unwrap();
                    // Exactness: the sharded optimum equals the unsharded
                    // optimum (both are the full-stream optimum).
                    assert!(
                        got.total_score.approx_eq(want.total_score, 1e-9),
                        "corpus {corpus_seed} band {band} k {k} τ {tau} shards {shards}: \
                         {} vs {}",
                        got.total_score,
                        want.total_score
                    );
                    // Hits are pairwise dissimilar at this τ.
                    for i in 0..got.hits.len() {
                        for j in (i + 1)..got.hits.len() {
                            let s = weighted_jaccard(
                                &corpus,
                                corpus.doc(got.hits[i].doc),
                                corpus.doc(got.hits[j].doc),
                            );
                            assert!(s <= tau, "similar hits at shards {shards}");
                        }
                    }
                    // Unique optimum (unique hit scores) ⇒ identical lists.
                    if unique {
                        assert_eq!(
                            want.hits, got.hits,
                            "corpus {corpus_seed} band {band} k {k} τ {tau} shards {shards}"
                        );
                        checked_identical += 1;
                    }
                }
            }
        }
    }
    assert!(
        checked_identical >= 8,
        "too few distinct-score cases exercised ({checked_identical}) — \
         the identical-hits property was barely tested"
    );
}

#[test]
fn engine_is_deterministic_across_rebuilds() {
    let corpus = corpus_for(31, 180);
    let index = InvertedIndex::build(&corpus);
    let terms = interesting_terms(&corpus, &index, 2);
    let options = SearchOptions::new(5).with_tau(0.5);
    let a = Engine::new(corpus.clone(), EngineConfig::new(4).with_threads(2));
    let b = Engine::new(corpus.clone(), EngineConfig::new(4).with_threads(2));
    for &term in &terms {
        assert_eq!(
            a.search(&Query::Scan(term), &options).unwrap(),
            b.search(&Query::Scan(term), &options).unwrap()
        );
    }
    let query = KeywordQuery {
        terms: terms.clone(),
    };
    assert_eq!(
        a.search(&Query::Keywords(query.clone()), &options).unwrap(),
        b.search(&Query::Keywords(query), &options).unwrap()
    );
}

#[test]
fn cache_hits_return_bit_identical_output_for_both_query_kinds() {
    let corpus = corpus_for(41, 180);
    let index = InvertedIndex::build(&corpus);
    let terms = interesting_terms(&corpus, &index, 2);
    let engine = Engine::new(corpus, EngineConfig::new(4).with_threads(1));
    let options = SearchOptions::new(4).with_tau(0.5);
    let scan_query = Query::Scan(terms[0]);
    let ta_query = Query::Keywords(KeywordQuery { terms });
    for query in [&scan_query, &ta_query] {
        let first = engine.search(query, &options).unwrap();
        let second = engine.search(query, &options).unwrap();
        assert_eq!(first, second, "cache hit must be bit-identical");
    }
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 2);
}

#[test]
fn batched_equals_sequential_under_concurrency() {
    let corpus = corpus_for(51, 200);
    let index = InvertedIndex::build(&corpus);
    let terms = interesting_terms(&corpus, &index, 3);
    // Uncached engines so the batch cannot lean on the sequential run.
    let batch_engine = Engine::new(
        corpus.clone(),
        EngineConfig::new(4).with_threads(4).with_cache_capacity(0),
    );
    let seq_engine = Engine::new(
        corpus,
        EngineConfig::new(4).with_threads(1).with_cache_capacity(0),
    );
    let mut batch: Vec<(Query, SearchOptions)> = Vec::new();
    for &term in &terms {
        for k in [2usize, 4, 6] {
            batch.push((Query::Scan(term), SearchOptions::new(k).with_tau(0.5)));
        }
    }
    batch.push((
        Query::Keywords(KeywordQuery {
            terms: terms.clone(),
        }),
        SearchOptions::new(5).with_tau(0.4),
    ));
    let got = batch_engine.search_batch(&batch);
    for ((query, options), out) in batch.iter().zip(got) {
        let want = seq_engine.search(query, options).unwrap();
        assert_eq!(want, out.unwrap());
    }
}

#[test]
fn sharded_total_scores_never_drift_from_zero() {
    // Sanity floor: even for tiny degenerate corpora the engine agrees
    // with the searcher (empty posting lists, k larger than matches, …).
    let mut b = Corpus::builder();
    b.add_text("only", "lonely term");
    let corpus = b.build();
    let index = InvertedIndex::build(&corpus);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let term = corpus.term_id("lonely").unwrap();
    let options = SearchOptions::new(5).with_tau(0.5);
    for &shards in &SHARD_COUNTS {
        let engine = Engine::new(corpus.clone(), EngineConfig::new(shards).with_threads(1));
        let got = engine.search(&Query::Scan(term), &options).unwrap();
        let want = searcher.search_scan(term, &options).unwrap();
        assert_eq!(want, got);
        assert_eq!(got.total_score, Score::ZERO); // idf of a 1-doc corpus
    }
}
