//! End-to-end framework tests over the text substrate: the early-stopping
//! engine must return exactly what offline materialization returns, for
//! both source kinds (incremental scan and threshold algorithm), every
//! inner algorithm, and a range of τ and k.

use divtopk::core::exhaustive::exhaustive;
use divtopk::text::prelude::*;
use divtopk::{DiversityGraph, ExactAlgorithm, Score};
use std::collections::HashSet;

struct Fixture {
    corpus: Corpus,
    index: InvertedIndex,
}

fn fixture() -> Fixture {
    let corpus = generate(&SynthConfig::tiny());
    let index = InvertedIndex::build(&corpus);
    Fixture { corpus, index }
}

/// Offline oracle over all matching documents (exhaustive for small result
/// sets, div-cut otherwise — itself validated against the oracle elsewhere).
fn offline(fix: &Fixture, terms: &[TermId], k: usize, tau: f64) -> Score {
    let mut docs: HashSet<DocId> = HashSet::new();
    for &t in terms {
        for p in fix.index.postings(t) {
            docs.insert(p.doc);
        }
    }
    let items: Vec<(DocId, Score)> = docs
        .into_iter()
        .map(|d| (d, score(&fix.corpus, terms, d)))
        .collect();
    let (graph, _) = DiversityGraph::from_items(
        &items,
        |&(_, s)| s,
        |&(a, _), &(b, _)| {
            weighted_jaccard(&fix.corpus, fix.corpus.doc(a), fix.corpus.doc(b)) > tau
        },
    );
    if graph.len() <= 22 {
        exhaustive(&graph, k).best().score()
    } else {
        divtopk::div_cut(&graph, k).best().score()
    }
}

fn mid_frequency_terms(fix: &Fixture, lo: usize, hi: usize, take: usize) -> Vec<TermId> {
    (0..fix.corpus.num_terms() as TermId)
        .filter(|&t| {
            let len = fix.index.postings(t).len();
            (lo..=hi).contains(&len)
        })
        .take(take)
        .collect()
}

#[test]
fn scan_matches_offline_across_tau() {
    let fix = fixture();
    let terms = mid_frequency_terms(&fix, 10, 30, 4);
    assert!(!terms.is_empty());
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    for &term in &terms {
        for tau in [0.3, 0.5, 0.7] {
            let out = searcher
                .search_scan(term, &SearchOptions::new(4).with_tau(tau))
                .unwrap();
            let want = offline(&fix, &[term], 4, tau);
            assert!(
                out.total_score.approx_eq(want, 1e-9),
                "term {term} τ {tau}: got {} want {}",
                out.total_score,
                want
            );
        }
    }
}

#[test]
fn ta_matches_offline_across_k() {
    let fix = fixture();
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    let query = query_for_band(&fix.corpus, 2, 2, 3).expect("band 2");
    for k in [1usize, 2, 5, 8] {
        let out = searcher
            .search_ta(&query, &SearchOptions::new(k).with_tau(0.4))
            .unwrap();
        let want = offline(&fix, &query.terms, k, 0.4);
        assert!(
            out.total_score.approx_eq(want, 1e-9),
            "k {k}: got {} want {}",
            out.total_score,
            want
        );
        assert!(out.hits.len() <= k);
    }
}

#[test]
fn ta_and_scan_agree_on_single_term_queries() {
    // A single-keyword query through the TA must equal the incremental
    // scan: same stream content, different framework flavour.
    let fix = fixture();
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    let terms = mid_frequency_terms(&fix, 12, 40, 3);
    for &term in &terms {
        let options = SearchOptions::new(5).with_tau(0.5);
        let via_scan = searcher.search_scan(term, &options).unwrap();
        let via_ta = searcher
            .search_ta(&KeywordQuery { terms: vec![term] }, &options)
            .unwrap();
        assert!(
            via_scan.total_score.approx_eq(via_ta.total_score, 1e-9),
            "term {term}: scan {} vs ta {}",
            via_scan.total_score,
            via_ta.total_score
        );
    }
}

#[test]
fn inner_algorithms_agree_under_the_framework() {
    let fix = fixture();
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    let query = query_for_band(&fix.corpus, 1, 2, 9).expect("band 1");
    let mut totals = Vec::new();
    for algorithm in [
        ExactAlgorithm::AStar,
        ExactAlgorithm::Dp,
        ExactAlgorithm::Cut,
    ] {
        let out = searcher
            .search_ta(
                &query,
                &SearchOptions::new(6)
                    .with_tau(0.45)
                    .with_mode(DiversifyMode::Exact(algorithm)),
            )
            .unwrap();
        totals.push(out.total_score);
    }
    assert!(totals[0].approx_eq(totals[1], 1e-9));
    assert!(totals[1].approx_eq(totals[2], 1e-9));
}

#[test]
fn hits_respect_the_similarity_threshold() {
    let fix = fixture();
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    let terms = mid_frequency_terms(&fix, 20, 80, 2);
    for &term in &terms {
        for tau in [0.2, 0.6] {
            let out = searcher
                .search_scan(term, &SearchOptions::new(6).with_tau(tau))
                .unwrap();
            for i in 0..out.hits.len() {
                for j in (i + 1)..out.hits.len() {
                    let s = weighted_jaccard(
                        &fix.corpus,
                        fix.corpus.doc(out.hits[i].doc),
                        fix.corpus.doc(out.hits[j].doc),
                    );
                    assert!(s <= tau, "pair ({i},{j}) sim {s} > τ {tau}");
                }
            }
        }
    }
}

#[test]
fn early_stop_saves_work_but_not_correctness() {
    let fix = fixture();
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    // Highest-df term → longest stream → most to save.
    let term = (0..fix.corpus.num_terms() as TermId)
        .max_by_key(|&t| fix.index.postings(t).len())
        .unwrap();
    let stream_len = fix.index.postings(term).len();
    let out = searcher
        .search_scan(term, &SearchOptions::new(3).with_tau(0.9))
        .unwrap();
    assert!(out.metrics.early_stopped);
    assert!((out.metrics.results_generated as usize) < stream_len);
    let want = offline(&fix, &[term], 3, 0.9);
    assert!(out.total_score.approx_eq(want, 1e-9));
}

#[test]
fn metrics_are_consistent() {
    let fix = fixture();
    let searcher = DiversifiedSearcher::new(&fix.corpus, &fix.index);
    let query = query_for_band(&fix.corpus, 2, 2, 17).expect("band 2");
    let out = searcher
        .search_ta(&query, &SearchOptions::new(5).with_tau(0.5))
        .unwrap();
    let m = &out.metrics;
    assert!(m.inner_searches >= 1);
    assert!(m.results_generated >= out.hits.len() as u64);
    // n results → at most n(n-1)/2 similarity checks.
    let n = m.results_generated;
    assert!(m.similarity_checks <= n * (n.saturating_sub(1)) / 2 + n);
    assert!(m.search.astar_calls >= m.inner_searches || m.inner_searches == 0);
}
