//! Integration tests pinning every worked example in the paper.
//!
//! * Fig. 1 / Examples 1–2 — the 6-node running example (k = 2 and 3).
//! * Fig. 2 — the greedy worst case (greedy 199 vs optimal 9,900).
//! * Fig. 6/7 / Example 3 — the two-component ⊕ combination.
//! * Figs. 8–11 / Examples 4–5 — compression + cptree (checked in
//!   `divtopk-core`'s unit tests; here we re-verify the final answer
//!   through every public entry point).

use divtopk::core::exhaustive::exhaustive;
use divtopk::*;

fn s(v: u32) -> Score {
    Score::from(v)
}

#[test]
fn fig1_example1_all_algorithms() {
    let g = DiversityGraph::paper_fig1();
    for k in [2usize, 3] {
        let want = if k == 2 { s(18) } else { s(20) };
        assert_eq!(div_astar(&g, k).best().score(), want, "astar k={k}");
        assert_eq!(div_dp(&g, k).best().score(), want, "dp k={k}");
        assert_eq!(div_cut(&g, k).best().score(), want, "cut k={k}");
        assert_eq!(exhaustive(&g, k).best().score(), want, "oracle k={k}");
    }
    // Example 1's witnesses.
    assert_eq!(div_astar(&g, 2).best().nodes(), &[0, 1]); // {v1, v2}
    assert_eq!(div_astar(&g, 3).best().nodes(), &[2, 3, 4]); // {v3, v4, v5}
}

#[test]
fn fig2_greedy_vs_optimal() {
    use divtopk::core::testgen::star_chain;
    let g = star_chain(100);
    assert_eq!(g.len(), 201);
    assert_eq!(g.edge_count(), 200);

    let (_, greedy_score) = greedy(&g, 100);
    assert_eq!(greedy_score, s(199), "greedy picks the hub plus 99 leaves");

    let exact = div_cut(&g, 100).best().score();
    assert_eq!(exact, s(9900), "the optimum takes all 100 middles");

    // "nearly 50 times" (the paper's phrasing).
    let ratio = exact.get() / greedy_score.get();
    assert!(ratio > 49.0 && ratio < 50.0, "ratio {ratio}");
}

#[test]
fn fig2_family_scales() {
    use divtopk::core::testgen::star_chain;
    for m in [5usize, 20, 50] {
        let g = star_chain(m);
        let (_, greedy_score) = greedy(&g, m);
        assert_eq!(greedy_score, Score::from(100 + m as u32 - 1));
        let exact = div_cut(&g, m).best().score();
        assert_eq!(exact, Score::from(99 * m as u32));
    }
}

#[test]
fn example3_dp_combination_scores() {
    // Fig. 6's two components assembled in one graph; combined per-size
    // table from Fig. 7: 10, 20, 28, 36, 40.
    let scores = [
        s(10),
        s(8),
        s(7),
        s(7),
        s(6),
        s(1), // v1..v6 (Fig. 1 = G1)
        s(10),
        s(9),
        s(8),
        s(7),
        s(6), // u1..u5 (G2)
    ];
    let edges = [
        (0u32, 2u32),
        (0, 3),
        (0, 4),
        (1, 2),
        (1, 3),
        (1, 4),
        (3, 5),
        (4, 5),
        (6, 7),
        (6, 9),
        (6, 10),
        (7, 8),
        (8, 9),
        (8, 10),
    ];
    let (g, _) = DiversityGraph::from_unsorted_scores(&scores, &edges);
    for result in [div_dp(&g, 5), div_cut(&g, 5), div_astar(&g, 5)] {
        assert_eq!(result.prefix_best_score(1), s(10));
        assert_eq!(result.prefix_best_score(2), s(20));
        assert_eq!(result.prefix_best_score(3), s(28));
        assert_eq!(result.prefix_best_score(4), s(36));
        assert_eq!(result.prefix_best_score(5), s(40));
    }
}

#[test]
fn google_apple_anecdote() {
    // §1's motivating example: 7 of the top-10 image results are the same
    // logo. Model: 7 near-identical "logo" results outrank 5 distinct ones;
    // the diversified top-10 keeps one logo and every distinct result.
    let mut items: Vec<Scored<(u32, &str)>> = (0..7)
        .map(|i| Scored::new((i, "logo"), Score::new(10.0 - i as f64 * 0.1)))
        .collect();
    for (i, kind) in ["pie", "orchard", "store", "ceo", "harvest"]
        .iter()
        .enumerate()
    {
        items.push(Scored::new(
            (7 + i as u32, kind),
            Score::new(5.0 - i as f64 * 0.1),
        ));
    }
    let source = IncrementalVecSource::new(items);
    let similar = |a: &(u32, &str), b: &(u32, &str)| a.1 == b.1;
    let out = DivTopK::new(source, similar, DivSearchConfig::new(10))
        .run()
        .unwrap();
    assert_eq!(out.selected.len(), 6); // 1 logo + 5 distinct
    assert_eq!(
        out.selected.iter().filter(|r| r.item.1 == "logo").count(),
        1
    );
    // The kept logo is the best-scored one.
    assert_eq!(out.selected[0].item, (0, "logo"));
}
