//! Property tests for concurrent shard pulls (`divtopk-core::prefetch` +
//! the pooled search paths): the parallel pull pipeline must be
//! **byte-identical** to the sequential merge, not merely equivalent.
//!
//! The argument (DESIGN.md §11): a sequential source's unseen bound only
//! changes at a pull, so a prefetching producer that records
//! `(emission, bound-after-that-pull)` pairs and a facade that installs
//! the recorded bound at pop time replays the exact observation sequence
//! the merge would have made itself. Everything downstream — heap order,
//! tombstone filter, framework metrics, Lemma-3 early-stop point — is a
//! deterministic function of that sequence, so the whole `SearchOutput`
//! must match bit for bit, for every shard count, pool size, and mode.

use divtopk::core::WorkerPool;
use divtopk::core::rng::Pcg;
use divtopk::engine::prelude::*;
use divtopk::text::prelude::*;
use divtopk::text::segments::SegmentedIndex;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const POOL_SIZES: [usize; 3] = [1, 2, 4];

fn corpus_for(seed: u64, num_docs: usize) -> Corpus {
    generate(&SynthConfig {
        num_docs,
        near_dup_prob: 0.35, // plenty of near-duplicate structure
        ..SynthConfig::tiny().with_seed(seed)
    })
}

/// Terms with a mid-sized posting list (interesting but tractable).
fn interesting_terms(corpus: &Corpus, index: &InvertedIndex, count: usize) -> Vec<TermId> {
    let mut terms: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| (6..=60).contains(&index.postings(t).len()))
        .collect();
    terms.sort_by_key(|&t| std::cmp::Reverse(index.postings(t).len()));
    terms.truncate(count);
    terms
}

/// A segmented index with `shards` base segments and a deterministic set
/// of tombstones, so the filtered-merge hooks are on the tested path.
fn segmented_with_tombstones(corpus: &Corpus, shards: usize, seed: u64) -> SegmentedIndex {
    let mut segmented = SegmentedIndex::build_partitioned(corpus.clone(), shards);
    let mut rng = Pcg::new(seed);
    let victims: Vec<DocId> = (0..corpus.num_docs() / 10)
        .map(|_| rng.below(corpus.num_docs() as u32))
        .collect();
    segmented.delete_docs(&victims);
    assert!(segmented.tombstones() > 0, "tombstone hook not exercised");
    segmented
}

#[test]
fn parallel_scan_pull_is_byte_identical_to_sequential() {
    for corpus_seed in [21u64, 22] {
        let corpus = corpus_for(corpus_seed, 220);
        let index = InvertedIndex::build(&corpus);
        let terms = interesting_terms(&corpus, &index, 3);
        assert!(
            !terms.is_empty(),
            "corpus {corpus_seed} has no usable terms"
        );
        for &shards in &SHARD_COUNTS {
            let segmented = segmented_with_tombstones(&corpus, shards, corpus_seed);
            for &workers in &POOL_SIZES {
                let pool = WorkerPool::new(workers);
                for &term in &terms {
                    for (k, tau) in [(3usize, 0.4f64), (5, 0.6), (8, 0.3)] {
                        let options = SearchOptions::new(k).with_tau(tau);
                        let want = segmented.search_scan(term, &options).unwrap();
                        let got = segmented.search_scan_pooled(term, &options, &pool).unwrap();
                        // Total equality: hits, scores, AND all framework
                        // metrics, including the early-stop point.
                        assert_eq!(
                            want, got,
                            "corpus {corpus_seed} term {term} k {k} τ {tau} \
                             shards {shards} pool {workers}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_ta_pull_is_byte_identical_to_sequential() {
    for corpus_seed in [31u64, 32] {
        let corpus = corpus_for(corpus_seed, 220);
        let index = InvertedIndex::build(&corpus);
        let terms = interesting_terms(&corpus, &index, 4);
        assert!(terms.len() >= 2, "corpus {corpus_seed} has too few terms");
        let queries: Vec<KeywordQuery> = terms
            .windows(2)
            .map(|w| KeywordQuery { terms: w.to_vec() })
            .collect();
        for &shards in &SHARD_COUNTS {
            let segmented = segmented_with_tombstones(&corpus, shards, corpus_seed);
            for &workers in &POOL_SIZES {
                let pool = WorkerPool::new(workers);
                for query in &queries {
                    for (k, tau) in [(3usize, 0.5f64), (6, 0.3)] {
                        let options = SearchOptions::new(k).with_tau(tau);
                        let want = segmented.search_ta(query, &options).unwrap();
                        let got = segmented.search_ta_pooled(query, &options, &pool).unwrap();
                        assert_eq!(
                            want, got,
                            "corpus {corpus_seed} query {:?} k {k} τ {tau} \
                             shards {shards} pool {workers}",
                            query.terms
                        );
                    }
                }
            }
        }
    }
}

/// The same guarantee one layer up: an engine with the parallel-pull pool
/// enabled answers byte-identically to one with it disabled — through
/// live mutations (fresh segments, growing tombstone set) on both sides.
#[test]
fn engine_parallel_pulls_are_byte_identical_through_mutations() {
    let corpus = corpus_for(41, 260);
    let index = InvertedIndex::build(&corpus);
    let terms = interesting_terms(&corpus, &index, 3);
    assert!(terms.len() >= 2, "corpus has too few usable terms");
    let donor = corpus_for(42, 40);

    for &shards in &[2usize, 4] {
        // Caches off so every query exercises the real pull path.
        let sequential = Engine::new(
            corpus.clone(),
            EngineConfig::new(shards)
                .with_cache_capacity(0)
                .with_pull_workers(0),
        );
        let parallel = Engine::new(
            corpus.clone(),
            EngineConfig::new(shards)
                .with_cache_capacity(0)
                .with_pull_workers(4),
        );
        assert_eq!(parallel.pull_workers(), 4);
        assert_eq!(sequential.pull_workers(), 0);

        let mut rng = Pcg::new(0x41 + shards as u64);
        for round in 0..4 {
            for &term in &terms {
                let options = SearchOptions::new(5).with_tau(0.5);
                let want = sequential.search(&Query::Scan(term), &options).unwrap();
                let got = parallel.search(&Query::Scan(term), &options).unwrap();
                assert_eq!(want, got, "scan term {term} round {round} shards {shards}");
            }
            let query = Query::Keywords(KeywordQuery {
                terms: vec![terms[0], terms[1]],
            });
            let options = SearchOptions::new(4).with_tau(0.4);
            let want = sequential.search(&query, &options).unwrap();
            let got = parallel.search(&query, &options).unwrap();
            assert_eq!(want, got, "ta round {round} shards {shards}");

            // Identical mutations on both engines: adds create fresh
            // segments, deletes grow the tombstone filter.
            let batch: Vec<Document> = (round * 8..round * 8 + 8)
                .map(|d| donor.doc(d as DocId).clone())
                .collect();
            sequential.add_docs(batch.clone());
            parallel.add_docs(batch);
            let victims: Vec<DocId> = (0..5)
                .map(|_| rng.below(corpus.num_docs() as u32))
                .collect();
            sequential.delete_docs(&victims);
            parallel.delete_docs(&victims);
        }
        // The parallel engine actually took the pooled path (multi-segment
        // snapshots from round 0), and the sequential engine never did.
        assert!(
            parallel.stats().parallel_pulls > 0,
            "pooled path never engaged at {shards} shards"
        );
        assert_eq!(sequential.stats().parallel_pulls, 0);
    }
}

/// A single-segment snapshot must not pay pool overhead: the engine
/// routes it down the sequential path even with pull workers configured.
#[test]
fn single_segment_snapshots_bypass_the_pool() {
    let corpus = corpus_for(51, 120);
    let index = InvertedIndex::build(&corpus);
    let terms = interesting_terms(&corpus, &index, 1);
    let engine = Engine::new(
        corpus,
        EngineConfig::new(1)
            .with_cache_capacity(0)
            .with_pull_workers(4),
    );
    let options = SearchOptions::new(3).with_tau(0.5);
    engine.search(&Query::Scan(terms[0]), &options).unwrap();
    assert_eq!(engine.stats().parallel_pulls, 0);
}
