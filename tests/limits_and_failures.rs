//! Resource-budget behaviour — the library analogue of the paper's `INF`
//! entries (runs that exhausted the 2 GB testbed must fail cleanly, not
//! take the process down).

use divtopk::core::testgen;
use divtopk::*;
use std::time::Duration;

/// A graph family div-astar struggles with: one big dense-ish component.
fn hard_graph() -> DiversityGraph {
    testgen::random_graph(60, 0.15, 99)
}

#[test]
fn astar_respects_byte_budget() {
    let g = hard_graph();
    let limits = SearchLimits::with_max_bytes(4 * 1024);
    let err = div_astar_limited(&g, 30, &limits).unwrap_err();
    assert!(matches!(err, SearchError::ResourceExhausted(_)));
}

#[test]
fn astar_respects_heap_budget() {
    let g = hard_graph();
    let limits = SearchLimits {
        max_heap_entries: Some(16),
        ..SearchLimits::default()
    };
    let err = div_astar_limited(&g, 30, &limits).unwrap_err();
    assert_eq!(
        err,
        SearchError::ResourceExhausted(ExhaustedResource::HeapEntries)
    );
}

#[test]
fn astar_respects_deadline() {
    let g = testgen::random_graph(120, 0.08, 5);
    let limits = SearchLimits::with_time_budget(Duration::from_millis(1));
    // Either it finishes inside a millisecond (fine) or it must abort with
    // a deadline error — never hang.
    match div_astar_limited(&g, 60, &limits) {
        Ok(_) => {}
        Err(e) => assert_eq!(
            e,
            SearchError::ResourceExhausted(ExhaustedResource::Deadline)
        ),
    }
}

#[test]
fn generous_budgets_do_not_change_answers() {
    for seed in 0..8 {
        let g = testgen::random_graph(12, 0.3, seed);
        let unlimited = div_astar(&g, 6);
        let (budgeted, _) = div_astar_limited(
            &g,
            6,
            &SearchLimits {
                max_heap_entries: Some(1 << 20),
                max_expansions: Some(1 << 30),
                time_budget: Some(Duration::from_secs(60)),
                max_bytes: Some(1 << 30),
            },
        )
        .unwrap();
        for i in 0..=6 {
            assert_eq!(
                unlimited.prefix_best_score(i),
                budgeted.prefix_best_score(i)
            );
        }
    }
}

#[test]
fn dp_and_cut_share_budgets_across_components() {
    // Many components: per-component costs must accumulate against ONE
    // budget, so a tiny global budget fails even though each component is
    // trivial.
    let scores = (0..200).map(|i| Score::from(1000 - i as u32)).collect();
    let edges: Vec<(u32, u32)> = (0..100).map(|i| (2 * i, 2 * i + 1)).collect();
    let g = DiversityGraph::from_sorted_scores(scores, &edges);
    let limits = SearchLimits {
        max_expansions: Some(50),
        ..SearchLimits::default()
    };
    assert!(div_dp_limited(&g, 100, &limits).is_err());
    assert!(div_cut_limited(&g, 100, &limits).is_err());
    // With a budget large enough, both succeed and agree.
    let limits = SearchLimits {
        max_expansions: Some(2_000_000),
        ..SearchLimits::default()
    };
    let (dp, _) = div_dp_limited(&g, 100, &limits).unwrap();
    let (cut, _) = div_cut_limited(&g, 100, &limits).unwrap();
    assert_eq!(dp.best().score(), cut.best().score());
}

#[test]
fn framework_surfaces_inner_budget_errors() {
    let items: Vec<Scored<u32>> = (0..200)
        .map(|i| Scored::new(i, Score::from(1000 - i)))
        .collect();
    // Dense similarity: i ≈ j iff same bucket of 4 — graph gets chunky.
    let similar = |a: &u32, b: &u32| a / 4 == b / 4;
    let config = DivSearchConfig::new(50).with_limits(SearchLimits {
        max_expansions: Some(3),
        ..SearchLimits::default()
    });
    let out = DivTopK::new(IncrementalVecSource::new(items), similar, config).run();
    assert!(matches!(out, Err(SearchError::ResourceExhausted(_))));
}

#[test]
fn greedy_is_immune_to_budgets_by_design() {
    // The baseline must handle graphs where exact search would explode.
    let g = testgen::random_graph(5_000, 0.001, 3);
    let (nodes, score) = greedy(&g, 500);
    assert!(!nodes.is_empty());
    assert!(score > Score::ZERO);
    assert!(g.is_independent_set(&nodes));
}

#[test]
fn error_display_is_informative() {
    let e = SearchError::ResourceExhausted(ExhaustedResource::Bytes);
    let msg = format!("{e}");
    assert!(msg.contains("budget"), "{msg}");
    let e = SearchError::InvalidK { k: 0 };
    assert!(format!("{e}").contains("invalid k"));
}
