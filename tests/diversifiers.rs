//! Property suite for the `Diversifier` leaves behind `DiversifyMode`:
//! every mode must be deterministic across corpus+index rebuilds, the
//! `Exact` leaf must be byte-identical to driving the core framework
//! directly (the pre-redesign path), `None` must match both the
//! deprecated `with_diversify(false)` shim and an offline plain top-k
//! oracle, and each mode's defining invariant must hold on its output
//! (pairwise τ for exact, max-per-source windows for window, maximal
//! independent sets for DisC).

use divtopk::core::diversify::{mmr_select, rerank_pool_size, window_spread};
use divtopk::core::sources::Scored;
use divtopk::text::prelude::*;
use divtopk::{DivSearchConfig, DivTopK, ExactAlgorithm, Score};
use proptest::prelude::*;
use std::collections::HashSet;

fn build(seed: u64) -> (Corpus, InvertedIndex) {
    let corpus = generate(&SynthConfig {
        seed,
        ..SynthConfig::tiny()
    });
    let index = InvertedIndex::build(&corpus);
    (corpus, index)
}

/// A term with a mid-sized posting list: enough matches to exercise
/// pools and rotation, small enough for the exhaustive checks below.
fn probe_term(corpus: &Corpus, index: &InvertedIndex) -> TermId {
    (0..corpus.num_terms() as TermId)
        .filter(|&t| (20..=120).contains(&index.postings(t).len()))
        .max_by_key(|&t| index.postings(t).len())
        .expect("tiny synth corpus has mid-frequency terms")
}

/// Every mode the redesign ships, with both λ extremes for MMR.
fn all_modes() -> Vec<DiversifyMode> {
    vec![
        DiversifyMode::Exact(ExactAlgorithm::AStar),
        DiversifyMode::Exact(ExactAlgorithm::Dp),
        DiversifyMode::Exact(ExactAlgorithm::Cut),
        DiversifyMode::None,
        DiversifyMode::mmr(0.3),
        DiversifyMode::mmr(0.7),
        DiversifyMode::window(),
        DiversifyMode::Window(WindowConfig {
            window: 3,
            max_per_source: 1,
            min_score_ratio: 0.0,
        }),
        DiversifyMode::Disc,
        DiversifyMode::knn(),
    ]
}

/// The thresholded similarity the search path uses, reconstructed the
/// way the invariant checks need it (outside `search_with_source`).
fn similar(corpus: &Corpus, weights: &[f64], a: DocId, b: DocId, tau: f64) -> bool {
    similar_above(
        corpus.idf_table(),
        corpus.doc(a),
        weights[a as usize],
        corpus.doc(b),
        weights[b as usize],
        tau,
    )
}

// ------------------------------------------------- cross-rebuild determinism

#[test]
fn every_mode_is_deterministic_across_corpus_and_index_rebuilds() {
    for seed in [0x2E07, 0xBEEF] {
        let (corpus_a, index_a) = build(seed);
        let (corpus_b, index_b) = build(seed);
        let searcher_a = DiversifiedSearcher::new(&corpus_a, &index_a);
        let searcher_b = DiversifiedSearcher::new(&corpus_b, &index_b);
        let term = probe_term(&corpus_a, &index_a);
        let query = query_for_band(&corpus_a, 2, 2, 5).expect("band 2 populated");
        for mode in all_modes() {
            let options = SearchOptions::new(7).with_tau(0.4).with_mode(mode.clone());
            assert_eq!(
                searcher_a.search_scan(term, &options).unwrap(),
                searcher_b.search_scan(term, &options).unwrap(),
                "scan/{:?} differs across rebuilds",
                mode
            );
            assert_eq!(
                searcher_a.search_ta(&query, &options).unwrap(),
                searcher_b.search_ta(&query, &options).unwrap(),
                "ta/{:?} differs across rebuilds",
                mode
            );
        }
    }
}

// -------------------------------------------- exact ≡ the direct framework

#[test]
fn exact_mode_is_byte_identical_to_driving_the_framework_directly() {
    let (corpus, index) = build(0x2E07);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let weights = doc_weights(&corpus);
    let term = probe_term(&corpus, &index);
    let (k, tau) = (6, 0.4);
    for algorithm in [
        ExactAlgorithm::AStar,
        ExactAlgorithm::Dp,
        ExactAlgorithm::Cut,
    ] {
        let via_mode = searcher
            .search_scan(
                term,
                &SearchOptions::new(k)
                    .with_tau(tau)
                    .with_mode(DiversifyMode::Exact(algorithm.clone())),
            )
            .unwrap();
        // The pre-redesign path: DivTopK over the scan source with the
        // thresholded predicate, no trait in between.
        let direct = DivTopK::new(
            ScanSource::new(&index, term),
            |a: &DocId, b: &DocId| similar(&corpus, &weights, *a, *b, tau),
            DivSearchConfig::new(k).with_algorithm(algorithm.clone()),
        )
        .run()
        .unwrap();
        let direct_hits: Vec<Hit> = direct
            .selected
            .iter()
            .map(|r| Hit {
                doc: r.item,
                score: r.score,
            })
            .collect();
        assert_eq!(via_mode.hits, direct_hits, "{:?} hits drifted", algorithm);
        assert_eq!(via_mode.total_score, direct.total_score);
        assert_eq!(
            via_mode.metrics, direct.metrics,
            "framework metrics drifted"
        );
    }
}

#[test]
fn exact_hits_are_pairwise_below_tau() {
    let (corpus, index) = build(0xBEEF);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let weights = doc_weights(&corpus);
    let term = probe_term(&corpus, &index);
    for tau in [0.2, 0.5] {
        let out = searcher
            .search_scan(term, &SearchOptions::new(8).with_tau(tau))
            .unwrap();
        for (i, a) in out.hits.iter().enumerate() {
            for b in &out.hits[i + 1..] {
                assert!(
                    !similar(&corpus, &weights, a.doc, b.doc, tau),
                    "exact hits {} and {} exceed τ={}",
                    a.doc,
                    b.doc,
                    tau
                );
            }
        }
    }
}

// ------------------------------------------------- none ≡ plain top-k oracle

#[test]
fn none_mode_is_plain_topk_and_matches_the_deprecated_flag() {
    let (corpus, index) = build(0x2E07);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let term = probe_term(&corpus, &index);
    let k = 9;
    let via_mode = searcher
        .search_scan(
            term,
            &SearchOptions::new(k)
                .with_tau(0.4)
                .with_mode(DiversifyMode::None),
        )
        .unwrap();
    // The deprecated boolean shim must route to the same leaf.
    #[allow(deprecated)]
    let via_flag = searcher
        .search_scan(
            term,
            &SearchOptions::new(k).with_tau(0.4).with_diversify(false),
        )
        .unwrap();
    assert_eq!(via_mode, via_flag);
    // Offline oracle: score every matching document and take the best k.
    // Compared tie-robustly through the *sum* (unique even when the
    // cutoff has equal-scored documents) and within an epsilon — the
    // index's precomputed partial scores and a fresh `score()` agree
    // only up to the last ULP.
    let mut offline: Vec<(DocId, Score)> = index
        .postings(term)
        .iter()
        .map(|p| (p.doc, score(&corpus, &[term], p.doc)))
        .collect();
    offline.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let want: Score = offline.iter().take(k).map(|&(_, s)| s).sum();
    assert_eq!(via_mode.hits.len(), k.min(offline.len()));
    assert!(
        (via_mode.total_score.get() - want.get()).abs() < 1e-9,
        "None is not the plain top-k: {:?} vs {:?}",
        via_mode.total_score,
        want
    );
    // And the ranking is relevance-descending.
    assert!(
        via_mode.hits.windows(2).all(|w| w[0].score >= w[1].score),
        "None hits are not score-descending"
    );
}

#[test]
fn deprecated_shims_route_to_the_equivalent_modes() {
    #[allow(deprecated)]
    {
        let base = SearchOptions::new(5).with_tau(0.3);
        // algorithm → Exact(algorithm)
        assert_eq!(
            base.clone().with_algorithm(ExactAlgorithm::Dp).mode,
            DiversifyMode::Exact(ExactAlgorithm::Dp)
        );
        // diversify(false) → None, regardless of prior mode
        assert_eq!(
            base.clone()
                .with_algorithm(ExactAlgorithm::Dp)
                .with_diversify(false)
                .mode,
            DiversifyMode::None
        );
        // diversify(true) restores the default exact mode from None…
        assert_eq!(
            base.clone().with_diversify(false).with_diversify(true).mode,
            DiversifyMode::default()
        );
        // …but never clobbers an explicitly chosen non-None mode.
        assert_eq!(
            base.clone()
                .with_mode(DiversifyMode::mmr(0.7))
                .with_diversify(true)
                .mode,
            DiversifyMode::mmr(0.7)
        );
    }
}

// ------------------------------------------------------- per-mode invariants

/// The exact pool the rerank leaves see: plain top-`l` through the very
/// same framework path (`None` with `k = l`).
fn rerank_pool(searcher: &DiversifiedSearcher, term: TermId, k: usize, tau: f64) -> Vec<Hit> {
    searcher
        .search_scan(
            term,
            &SearchOptions::new(rerank_pool_size(k))
                .with_tau(tau)
                .with_mode(DiversifyMode::None),
        )
        .unwrap()
        .hits
}

#[test]
fn disc_selection_is_a_maximal_independent_set_of_its_pool() {
    let (corpus, index) = build(0x2E07);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let weights = doc_weights(&corpus);
    let term = probe_term(&corpus, &index);
    let (k, tau) = (8, 0.2);
    let out = searcher
        .search_scan(
            term,
            &SearchOptions::new(k)
                .with_tau(tau)
                .with_mode(DiversifyMode::Disc),
        )
        .unwrap();
    let pool = rerank_pool(&searcher, term, k, tau);
    let selected: HashSet<DocId> = out.hits.iter().map(|h| h.doc).collect();
    assert!(
        selected.iter().all(|d| pool.iter().any(|h| h.doc == *d)),
        "DisC selected outside its pool"
    );
    // Dissimilarity: pairwise independent.
    for (i, a) in out.hits.iter().enumerate() {
        for b in &out.hits[i + 1..] {
            assert!(!similar(&corpus, &weights, a.doc, b.doc, tau));
        }
    }
    // Coverage: a short selection means every unselected pool candidate
    // is similar to something selected (maximality).
    if out.hits.len() < k {
        for candidate in &pool {
            if selected.contains(&candidate.doc) {
                continue;
            }
            assert!(
                out.hits
                    .iter()
                    .any(|h| similar(&corpus, &weights, h.doc, candidate.doc, tau)),
                "doc {} is dissimilar to every selected hit, yet DisC stopped short",
                candidate.doc
            );
        }
    }
}

#[test]
fn window_selection_preserves_within_source_relevance_order() {
    let (corpus, index) = build(0xBEEF);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let weights = doc_weights(&corpus);
    let term = probe_term(&corpus, &index);
    let (k, tau) = (8, 0.2);
    let config = WindowConfig {
        window: 3,
        max_per_source: 1,
        min_score_ratio: 0.0,
    };
    let out = searcher
        .search_scan(
            term,
            &SearchOptions::new(k)
                .with_tau(tau)
                .with_mode(DiversifyMode::Window(config)),
        )
        .unwrap();
    let pool = rerank_pool(&searcher, term, k, tau);
    // Re-derive the leaf's leader clustering over the same pool.
    let scored: Vec<Scored<DocId>> = pool
        .iter()
        .map(|h| Scored {
            item: h.doc,
            score: h.score,
        })
        .collect();
    let sources = divtopk::core::diversify::assign_sources(&scored, |a, b| {
        similar(&corpus, &weights, *a, *b, tau)
    });
    let pool_index = |d: DocId| pool.iter().position(|h| h.doc == d).expect("hit in pool");
    let picked: Vec<usize> = out.hits.iter().map(|h| pool_index(h.doc)).collect();
    assert_eq!(picked.len(), k.min(pool.len()));
    for src in sources.iter().copied().collect::<HashSet<u32>>() {
        let of_source: Vec<usize> = picked
            .iter()
            .copied()
            .filter(|&m| sources[m] == src)
            .collect();
        assert!(
            of_source.windows(2).all(|w| w[0] < w[1]),
            "window rotation inverted within-source order for cluster {}",
            src
        );
    }
}

#[test]
fn window_spread_enforces_the_cap_when_candidates_are_eligible() {
    // Six same-source leaders up front, six singleton sources behind: a
    // cap of 1 with no score floor must interleave them so no length-3
    // window holds two of source 0.
    let scores: Vec<f64> = (0..12).map(|i| 100.0 - i as f64).collect();
    let sources: Vec<u32> = vec![0, 0, 0, 0, 0, 0, 6, 7, 8, 9, 10, 11];
    let config = WindowConfig {
        window: 3,
        max_per_source: 1,
        min_score_ratio: 0.0,
    };
    let (selection, rotations) = window_spread(&scores, &sources, &config, 8);
    assert!(rotations > 0, "the concentrated head must force rotations");
    for end in 0..selection.len() {
        let start = (end + 1).saturating_sub(config.window);
        let window = &selection[start..=end];
        for src in window.iter().map(|&m| sources[m]) {
            let count = window.iter().filter(|&&m| sources[m] == src).count();
            assert!(
                count <= config.max_per_source,
                "window {:?} holds {} of source {}",
                window,
                count,
                src
            );
        }
    }
}

// ----------------------------------------- pure-kernel properties (proptest)

/// Relevance-ordered random pool: scores descending, arbitrary labels.
fn pool_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<u32>)> {
    proptest::collection::vec((1u32..1_000, 0u32..6), 0..40).prop_map(|entries| {
        let mut scores: Vec<f64> = entries.iter().map(|&(s, _)| s as f64).collect();
        scores.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let sources: Vec<u32> = entries.iter().map(|&(_, src)| src).collect();
        (scores, sources)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn window_spread_is_a_deterministic_valid_selection(
        pool in pool_strategy(),
        window in 1usize..8,
        cap in 1usize..4,
        ratio in 0.0f64..1.0,
        k in 1usize..12,
    ) {
        let (scores, sources) = pool;
        let config = WindowConfig { window, max_per_source: cap, min_score_ratio: ratio };
        let (selection, rotations) = window_spread(&scores, &sources, &config, k);
        prop_assert_eq!(selection.len(), k.min(scores.len()));
        let mut dedup = selection.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), selection.len(), "duplicate pool index selected");
        // Same-source relative order always survives rotation.
        for src in sources.iter().copied().collect::<HashSet<u32>>() {
            let of_source: Vec<usize> =
                selection.iter().copied().filter(|&m| sources[m] == src).collect();
            prop_assert!(of_source.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert_eq!(window_spread(&scores, &sources, &config, k), (selection, rotations));
    }

    #[test]
    fn mmr_at_lambda_one_is_pure_relevance_order(
        raw in proptest::collection::vec(1u32..1_000, 1..30),
        k in 1usize..12,
    ) {
        let pool: Vec<Scored<usize>> = raw
            .iter()
            .enumerate()
            .map(|(i, &s)| Scored { item: i, score: Score::from(s) })
            .collect();
        // λ=1 ignores similarity entirely: ranking is (score desc, pool
        // index asc) no matter what the sim function says.
        let order = mmr_select(&pool, |_, _| 1.0, 1.0, k);
        let mut want: Vec<usize> = (0..pool.len()).collect();
        want.sort_by(|&a, &b| pool[b].score.cmp(&pool[a].score).then(a.cmp(&b)));
        want.truncate(k);
        prop_assert_eq!(order, want);
    }

    #[test]
    fn mmr_selects_k_distinct_indices_for_any_lambda(
        raw in proptest::collection::vec(1u32..1_000, 0..30),
        lambda in 0.0f64..1.0,
        k in 1usize..12,
    ) {
        let pool: Vec<Scored<usize>> = raw
            .iter()
            .enumerate()
            .map(|(i, &s)| Scored { item: i, score: Score::from(s) })
            .collect();
        let sim = |a: &usize, b: &usize| {
            // Deterministic pseudo-similarity in [0, 1).
            let x = (a.wrapping_mul(31).wrapping_add(b.wrapping_mul(17))) % 97;
            x as f64 / 97.0
        };
        let order = mmr_select(&pool, |a, b| sim(a, b).max(sim(b, a)), lambda, k);
        prop_assert_eq!(order.len(), k.min(pool.len()));
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), order.len());
        let again = mmr_select(&pool, |a, b| sim(a, b).max(sim(b, a)), lambda, k);
        prop_assert_eq!(again, order);
    }
}
