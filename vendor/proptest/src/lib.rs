//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so `tests/properties.rs` links against this API-compatible subset: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `collection::vec` /
//! regex-string strategies, the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking.** A failing case reports its deterministic case number
//!   and per-case seed instead of a minimized input; re-running the test
//!   reproduces it exactly (generation is seeded from the test name).
//! * **Regex strategies** support only the `.{lo,hi}` shape the test suite
//!   uses (any-char strings with bounded length); other patterns fall back
//!   to that same generator.
//!
//! Swapping in the real proptest later is a one-line change in the root
//! `Cargo.toml`; no test-source changes needed.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- rng

/// Deterministic 64-bit splitmix generator used for all value generation.
///
/// Each `(test, case)` pair derives its own seed from the test-name hash,
/// so failures reproduce across runs and machines without a seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant at test scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a string, for deriving per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ----------------------------------------------------------- strategy

/// A recipe for generating values of `Self::Value`.
///
/// Mirrors proptest's trait of the same name, minus shrinking: strategies
/// here only know how to produce a fresh value from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals act as regex strategies in proptest. This stand-in
/// understands the `.{lo,hi}` shape (strings of `lo..=hi` arbitrary
/// non-newline chars) and treats anything else as `.{0,64}`.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        // A deliberately gnarly alphabet: ascii, digits, punctuation,
        // whitespace, combining marks, CJK, and astral-plane emoji.
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '-', '_', '.', ',', '!', '?', '/', '\\',
            '(', ')', '"', '\'', '+', '=', '~', '@', 'é', 'ß', 'Ø', 'ç', '\u{0301}', 'λ', 'Ж',
            '日', '本', '語', '中', '🌊', '🦀', '😀', '∑', '√', '\u{2028}',
        ];
        (0..len)
            .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
            .collect()
    }
}

/// Parses `.{lo,hi}` → `(lo, hi)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// --------------------------------------------------------- collection

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Either an exact length or a half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ------------------------------------------------------------- config

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each test in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ------------------------------------------------------------- macros

/// Declares a block of property tests. Supports the subset of proptest's
/// grammar the suite uses: an optional leading
/// `#![proptest_config(expr)]`, then `#[test] fn name(pat in strategy, ...)`
/// items (doc comments and extra attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stand-in: {} failed at case {case}/{} (seed {seed:#x}); \
                         deterministic — rerun reproduces it",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        Map, ProptestConfig, Strategy, TestRng, prop_assert, prop_assert_eq, prop_assert_ne,
        proptest,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).new_value(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (0.5f64..2.0).new_value(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(11);
        let strat = collection::vec(0u32..10, 2..5).prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.new_value(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn string_strategy_honors_length_bounds() {
        let mut rng = TestRng::new(13);
        for _ in 0..200 {
            let s = ".{0,20}".new_value(&mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = collection::vec(0u32..100, 10).new_value(&mut TestRng::new(42));
        let b = collection::vec(0u32..100, 10).new_value(&mut TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..50, v in collection::vec(0u8..2, 0..6)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 6);
        }
    }
}
