//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the benches link against this API-compatible subset instead of the
//! real crate: same macros (`criterion_group!`/`criterion_main!`), same
//! entry points (`Criterion::bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`), and a real — if
//! simple — measurement loop: warm-up, then `sample_size` timed samples,
//! reporting min/median/mean per benchmark. Swapping in the real criterion
//! later is a one-line change in `crates/bench/Cargo.toml`; no bench source
//! changes needed.
//!
//! Flags: benches accept the substring filter argument cargo passes through
//! (`cargo bench -- <filter>`) and ignore criterion's own flags (`--bench`,
//! `--save-baseline`, ...), so `cargo bench` and `cargo bench --no-run`
//! behave as expected.

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier: a function name plus an optional parameter,
/// rendered `name/parameter` exactly like the real criterion.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("div-dp", 16)` → `div-dp/16`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is only the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to [`Bencher::iter`]-style entry points.
pub struct Bencher {
    samples: usize,
    measured: Option<Samples>,
}

struct Samples {
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: a short warm-up, then `samples` timed
    /// batches whose batch size is auto-calibrated so each batch takes
    /// roughly a millisecond (keeps sub-microsecond routines measurable).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes >= ~1ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                ((Duration::from_millis(2).as_nanos() / elapsed.as_nanos().max(1)) as u64)
                    .clamp(2, 16)
            });
        }
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        self.measured = Some(Samples { per_iter });
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_one(&full, self.sample_size, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// The benchmark driver. One instance is threaded through every registered
/// group by [`criterion_main!`].
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

/// Criterion flags that take their value as a separate argument; the value
/// must not be mistaken for the positional name filter.
const VALUE_FLAGS: &[&str] = &[
    "--save-baseline",
    "--baseline",
    "--baseline-lenient",
    "--load-baseline",
    "--measurement-time",
    "--warm-up-time",
    "--sample-size",
    "--nresamples",
    "--noise-threshold",
    "--confidence-level",
    "--significance-level",
    "--profile-time",
    "--color",
    "--colour",
    "--output-format",
    "--format",
];

/// Extracts the positional name filter from bench-binary arguments,
/// skipping criterion's flags and their values.
fn parse_filter(mut args: impl Iterator<Item = String>) -> Option<String> {
    let mut filter = None;
    while let Some(a) = args.next() {
        if a.starts_with('-') {
            // `--flag=value` is self-contained; `--flag value` consumes the
            // next argument.
            if !a.contains('=') && VALUE_FLAGS.contains(&a.as_str()) {
                args.next();
            }
        } else if filter.is_none() {
            filter = Some(a);
        }
    }
    filter
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo forwards everything after `--` to the bench binary; the only
        // positional argument criterion accepts there is a name filter.
        let filter = parse_filter(std::env::args().skip(1));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into().to_string();
        let n = self.default_sample_size;
        self.run_one(&full, n, |b| routine(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    fn run_one(&mut self, name: &str, samples: usize, mut routine: impl FnMut(&mut Bencher)) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            measured: None,
        };
        routine(&mut bencher);
        match bencher.measured {
            Some(mut s) => {
                s.per_iter.sort();
                let min = s.per_iter[0];
                let median = s.per_iter[s.per_iter.len() / 2];
                let mean = s.per_iter.iter().sum::<Duration>() / s.per_iter.len() as u32;
                println!(
                    "{name:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
                    min,
                    median,
                    mean,
                    s.per_iter.len()
                );
            }
            None => println!("{name:<48} (no measurement recorded)"),
        }
    }
}

/// Re-export so `use criterion::black_box` keeps working; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// Registers a group-runner function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("div-dp", 16).to_string(), "div-dp/16");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn parse_filter_ignores_flags_and_their_values() {
        let args = |v: &[&str]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        assert_eq!(parse_filter(args(&[])), None);
        assert_eq!(parse_filter(args(&["--bench"])), None);
        assert_eq!(
            parse_filter(args(&["exact", "--bench"])),
            Some("exact".into())
        );
        // A value-taking flag's value is not a filter.
        assert_eq!(
            parse_filter(args(&["--save-baseline", "before", "--bench"])),
            None
        );
        assert_eq!(
            parse_filter(args(&["--save-baseline", "before", "greedy"])),
            Some("greedy".into())
        );
        // `--flag=value` form is self-contained.
        assert_eq!(
            parse_filter(args(&["--sample-size=20", "ops"])),
            Some("ops".into())
        );
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
            default_sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("something-else", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
